"""Vectorized NumPy emulation of the approximate FP inner product.

Bit-for-bit equivalent to the golden scalar model in :mod:`repro.ipu.ipu`
(cross-checked by the test suite) but operating on whole batches, which makes
the paper's million-sample error analysis (Figure 3) tractable in Python.

All integer math stays inside int64: nibble products are <= 225, adder words
carry at most ``w - 9 <= 29`` fraction bits, and the 30-fraction-bit
accumulator register of a single FP-IP op is bounded by ``4 * n * 2**30``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fp.formats import FP16, FP32, FPFormat
from repro.fp.vecfloat import decode_array
from repro.ipu.ehu import mc_cycle_counts, serve_cycles
from repro.ipu.theory import safe_precision
from repro.nibble.decompose import fp_magnitude_nibbles_vec, fp_nibble_count, fp_nibble_weight_exp

__all__ = ["FPIPBatchResult", "fp_ip_batch", "int_dot_batch", "ACC_FRACTION_BITS"]

ACC_FRACTION_BITS = 30


@dataclass
class FPIPBatchResult:
    """Batch emulation output.

    ``values`` are the exact accumulator contents as float64 (the register
    fits in 45 bits, so float64 holds it exactly); ``rounded`` is the value
    rounded once into the accumulator format (FP16 or FP32) — NumPy's cast
    performs the same RNE rounding the write-back unit does.
    """

    values: np.ndarray          # float64 (B,)
    rounded: np.ndarray         # acc_fmt dtype (B,)
    max_exp: np.ndarray         # int64 (B,)
    alignment_cycles: np.ndarray  # int64 (B,) cycles per nibble iteration
    total_cycles: np.ndarray    # int64 (B,) alignment_cycles * iterations


def fp_ip_batch(
    a: np.ndarray,
    b: np.ndarray,
    adder_width: int,
    software_precision: int | None = None,
    acc_fmt: FPFormat = FP32,
    in_fmt: FPFormat = FP16,
    multi_cycle: bool = False,
) -> FPIPBatchResult:
    """Emulate FP inner products over a batch.

    Parameters
    ----------
    a, b:
        Float arrays of shape ``(B, n)``; they are cast into ``in_fmt``.
    adder_width:
        IPU precision ``w`` (adder-tree width / max local shift).
    software_precision:
        Mask threshold. Defaults to ``w`` for single-cycle analysis (the
        Figure-3 convention, where the IPU precision is the only knob) —
        pass the accumulator requirement (16/28) explicitly when modelling
        an MC-IPU.
    multi_cycle:
        Engage the MC serve loop when ``w < software_precision``.
    """
    sw = adder_width if software_precision is None else software_precision
    sp = safe_precision(adder_width, strict=multi_cycle and software_precision is not None
                        and adder_width < software_precision)
    if not multi_cycle and sw > adder_width:
        raise ValueError(
            f"single-cycle IPU({adder_width}) cannot reach software precision {sw}; "
            "set multi_cycle=True"
        )

    da, db = decode_array(in_fmt, a), decode_array(in_fmt, b)
    k_total = fp_nibble_count(in_fmt)
    nib_a = fp_magnitude_nibbles_vec(in_fmt, da.magnitude)  # (B, n, K)
    nib_b = fp_magnitude_nibbles_vec(in_fmt, db.magnitude)
    neg = (da.sign.astype(bool)) ^ (db.sign.astype(bool))   # product signs
    nib_a = np.where(neg[..., None], -nib_a, nib_a)

    exps = da.unbiased_exp + db.unbiased_exp                # (B, n)
    max_exp = exps.max(axis=1)                              # (B,)
    shifts = max_exp[:, None] - exps                        # (B, n) >= 0
    masked = shifts >= sw

    frac = -2 * fp_nibble_weight_exp(in_fmt, 0)             # 22 for FP16
    register = np.zeros(a.shape[0], dtype=np.int64)

    if multi_cycle and adder_width < sw:
        cyc_index = np.where(masked, -1, serve_cycles(shifts, sp))
        n_align = np.maximum(cyc_index.max(axis=1), 0) + 1
        max_cycles = int(n_align.max())
    else:
        cyc_index = np.where(masked, -1, 0)
        n_align = np.ones(a.shape[0], dtype=np.int64)
        max_cycles = 1

    # FP16 alignment shifts are <= 58; clamp defensively below int64's shift
    # limit (masked lanes are zeroed regardless of the shift applied).
    safe_shift = np.minimum(shifts, 58)
    up, down = max(sp, 0), max(-sp, 0)
    if max_cycles == 1:
        # Fast single-cycle path (the bulk of the Fig-3 / accuracy work):
        # zero masked lanes in the nibble operands once, so the per-iteration
        # kernel is three passes (multiply, shift, sum) with no selects.
        nib_a = np.where(masked[..., None], 0, nib_a)
        for i in range(k_total):
            for j in range(k_total):
                products = nib_a[:, :, i] * nib_b[:, :, j]  # (B, n), |p| <= 225
                tree = ((products << up) >> (safe_shift + down)).sum(axis=1, dtype=np.int64)
                shift_left = 4 * (i + j) - frac - sp + ACC_FRACTION_BITS
                if shift_left >= 0:
                    register += tree << shift_left
                else:
                    register += tree >> (-shift_left)
    else:
        for i in range(k_total):
            for j in range(k_total):
                products = nib_a[:, :, i] * nib_b[:, :, j]
                for c in range(max_cycles):
                    serving = cyc_index == c
                    if not serving.any():
                        continue
                    coarse = c * sp
                    local = np.where(serving, safe_shift - coarse, 0)
                    word = np.where(serving, (products << up) >> (local + down), 0)
                    tree = word.sum(axis=1, dtype=np.int64)  # (B,)
                    lsb = 4 * (i + j) - frac - sp - coarse
                    shift_left = lsb + ACC_FRACTION_BITS
                    if shift_left >= 0:
                        register += tree << shift_left
                    else:
                        register += tree >> (-shift_left)

    values = register.astype(np.float64) * np.exp2((max_exp - ACC_FRACTION_BITS).astype(np.float64))
    rounded = values.astype(_np_dtype(acc_fmt))
    iterations = k_total * k_total
    return FPIPBatchResult(
        values=values,
        rounded=rounded,
        max_exp=max_exp,
        alignment_cycles=n_align,
        total_cycles=n_align * iterations,
    )


def _np_dtype(fmt: FPFormat):
    if fmt.name == "fp16":
        return np.float16
    if fmt.name == "fp32":
        return np.float32
    raise NotImplementedError(f"no NumPy dtype for {fmt.name}")


def int_dot_batch(
    a: np.ndarray,
    b: np.ndarray,
    a_bits: int,
    b_bits: int,
    signed: bool = True,
) -> tuple[np.ndarray, int]:
    """Batched INT-mode inner products: ``(results, cycles_per_op)``.

    INT mode is exact (validated against the nibble-iterated golden model in
    the tests), so the batched form is a range-checked integer einsum plus
    the temporal cycle count ``Ka * Kb``.
    """
    from repro.nibble.schedule import iteration_count

    a = np.asarray(a, dtype=np.int64)
    b = np.asarray(b, dtype=np.int64)
    for arr, bits, name in ((a, a_bits, "a"), (b, b_bits, "b")):
        lo = -(1 << (bits - 1)) if signed else 0
        hi = (1 << (bits - 1)) - 1 if signed else (1 << bits) - 1
        if arr.min(initial=0) < lo or arr.max(initial=0) > hi:
            raise OverflowError(f"operand {name} exceeds {'' if signed else 'u'}int{bits}")
    return (a * b).sum(axis=-1), iteration_count(a_bits, b_bits)
