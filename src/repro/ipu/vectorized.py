"""Vectorized NumPy emulation of the approximate FP inner product.

Bit-for-bit equivalent to the golden scalar model in :mod:`repro.ipu.ipu`
(cross-checked by the test suite) but operating on whole batches, which makes
the paper's million-sample error analysis (Figure 3) tractable in Python.

Since the prepacked engine landed, :func:`fp_ip_batch` is a thin convenience
wrapper: it packs both operands (:func:`repro.ipu.engine.pack_operands`) and
runs one :class:`repro.ipu.engine.KernelPoint` through the chunked diagonal
kernel. Sweeps that evaluate many precisions or accumulator formats against
the same tensors should pack once and call
:func:`repro.ipu.engine.fp_ip_points` directly so the decode and nibble
split are not repeated per point.

All integer math stays inside int64 (or int32 when the engine proves the
adder words fit): nibble products are <= 225, adder words carry at most
``w - 9 <= 29`` fraction bits, and the 30-fraction-bit accumulator register
of a single FP-IP op is bounded by ``4 * n * 2**30``.
"""

from __future__ import annotations

import warnings

import numpy as np

from repro.fp.formats import FP16, FP32, FPFormat
from repro.ipu.accumulator import ACC_FRACTION_BITS
from repro.ipu.engine import FPIPBatchResult, KernelPoint, fp_ip_points, pack_operands

__all__ = ["FPIPBatchResult", "fp_ip_batch", "int_dot_batch", "ACC_FRACTION_BITS"]


def fp_ip_batch(
    a: np.ndarray,
    b: np.ndarray,
    adder_width: int,
    software_precision: int | None = None,
    acc_fmt: FPFormat = FP32,
    in_fmt: FPFormat = FP16,
    multi_cycle: bool = False,
) -> FPIPBatchResult:
    """Emulate FP inner products over a batch.

    Parameters
    ----------
    a, b:
        Float arrays of shape ``(B, n)``; they are cast into ``in_fmt``.
    adder_width:
        IPU precision ``w`` (adder-tree width / max local shift).
    software_precision:
        Mask threshold. Defaults to ``w`` for single-cycle analysis (the
        Figure-3 convention, where the IPU precision is the only knob) —
        pass the accumulator requirement (16/28) explicitly when modelling
        an MC-IPU.
    multi_cycle:
        Engage the MC serve loop when ``w < software_precision``.

    .. deprecated::
        Use :meth:`repro.api.EmulationSession.inner_product` — a session
        caches the operand plans this wrapper rebuilds on every call. The
        results are bit-identical (asserted by the deprecation-shim tests).
    """
    warnings.warn(
        "fp_ip_batch is deprecated; use repro.api.EmulationSession.inner_product",
        DeprecationWarning, stacklevel=2,
    )
    point = KernelPoint(adder_width, software_precision, multi_cycle, acc_fmt)
    point.resolve()  # validate the configuration before decoding anything
    pa = pack_operands(a, in_fmt)
    pb = pack_operands(b, in_fmt)
    return fp_ip_points(pa, pb, [point])[0]


def int_dot_batch(
    a: np.ndarray,
    b: np.ndarray,
    a_bits: int,
    b_bits: int,
    signed: bool = True,
) -> tuple[np.ndarray, int]:
    """Batched INT-mode inner products: ``(results, cycles_per_op)``.

    INT mode is exact (validated against the nibble-iterated golden model in
    the tests), so the batched form is a range-checked integer einsum plus
    the temporal cycle count ``Ka * Kb``.
    """
    from repro.nibble.schedule import iteration_count

    a = np.asarray(a, dtype=np.int64)
    b = np.asarray(b, dtype=np.int64)
    for arr, bits, name in ((a, a_bits, "a"), (b, b_bits, "b")):
        lo = -(1 << (bits - 1)) if signed else 0
        hi = (1 << (bits - 1)) - 1 if signed else (1 << bits) - 1
        if arr.min(initial=0) < lo or arr.max(initial=0) > hi:
            raise OverflowError(f"operand {name} exceeds {'' if signed else 'u'}int{bits}")
    return (a * b).sum(axis=-1), iteration_count(a_bits, b_bits)
