"""Combinational datapath pieces of the IPU (Figure 1, left side).

These scalar models enforce hardware field widths explicitly (operand
ranges, shifter reach, adder-tree word length) so the golden IPU model fails
loudly if the architecture-level code ever drives them out of spec.
"""

from __future__ import annotations

from repro.ipu.theory import PRODUCT_MAGNITUDE_BITS, safe_precision
from repro.nibble.decompose import OPERAND_MAX, OPERAND_MIN
from repro.utils.bits import bit_length_signed, floor_div_pow2

__all__ = ["SignedMultiplier5x5", "LocalShifter", "AdderTree"]


class SignedMultiplier5x5:
    """5-bit signed multiplier: operands in [-16, 15], product in 10 bits."""

    def multiply(self, a: int, b: int) -> int:
        if not (OPERAND_MIN <= a <= OPERAND_MAX and OPERAND_MIN <= b <= OPERAND_MAX):
            raise OverflowError(f"operands ({a}, {b}) exceed 5-bit signed range")
        return a * b


class LocalShifter:
    """Per-product right shifter with truncation into the adder-tree window.

    The shifter realizes the fixed-point convention of Proposition 1: the
    adder-tree word has ``sp = w - 9`` fraction bits below the product LSB,
    so the shifted value is ``floor(p * 2**(sp - s))`` — exact iff
    ``s <= sp``. INT mode always uses ``s = 0``. The reach is bounded by the
    IPU precision ``w``; the EHU never requests more because larger shifts
    are either masked or decomposed by the MC serve loop.
    """

    def __init__(self, adder_width: int):
        self.width = adder_width
        self.sp = safe_precision(adder_width)

    def shift(self, product: int, amount: int) -> int:
        if amount < 0:
            raise ValueError("local shifter only shifts right")
        if amount > self.width:
            raise OverflowError(
                f"shift {amount} exceeds the {self.width}-bit shifter reach"
            )
        if self.sp >= 0:
            value = floor_div_pow2(product << self.sp, amount)
        else:  # sub-product window: truncation starts before any shift
            value = floor_div_pow2(product, amount - self.sp)
        if bit_length_signed(value) > self.width + 1:
            raise OverflowError("shifted product does not fit the adder word")
        return value


class AdderTree:
    """n-input adder tree over ``w``-bit words.

    Output grows by ``ceil(log2 n)`` bits (the ``t`` of the accumulator).
    The model checks each input against the word width; the sum is exact.
    """

    def __init__(self, n_inputs: int, width: int):
        if n_inputs < 1:
            raise ValueError("adder tree needs at least one input")
        self.n_inputs = n_inputs
        self.width = width

    def sum(self, inputs: list[int]) -> int:
        if len(inputs) != self.n_inputs:
            raise ValueError(f"expected {self.n_inputs} inputs, got {len(inputs)}")
        for v in inputs:
            if bit_length_signed(v) > self.width + 1:
                raise OverflowError(f"adder input {v} exceeds {self.width} bits")
        return sum(inputs)
