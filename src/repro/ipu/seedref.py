"""Frozen pre-engine emulation kernel, kept as a second reference.

This is the original (seed) implementation of ``fp_ip_batch`` exactly as it
shipped before :mod:`repro.ipu.engine` replaced it on the hot paths. It is
retained for two purposes only:

- the engine property tests assert bit-identity against it (in addition to
  the scalar golden model), pinning the refactor to the historical bits;
- the benchmark report (``benchmarks/report.py``) times it against the
  engine at identical sample counts to track the speedup across PRs.

Do not optimise or otherwise modify this module; new functionality belongs
in :mod:`repro.ipu.engine`.
"""

from __future__ import annotations

import numpy as np

from repro.fp.formats import FP16, FP32, FPFormat, np_float_dtype
from repro.fp.vecfloat import decode_array
from repro.ipu.accumulator import ACC_FRACTION_BITS
from repro.ipu.ehu import serve_cycles
from repro.ipu.engine import FPIPBatchResult
from repro.ipu.theory import safe_precision
from repro.nibble.decompose import fp_magnitude_nibbles_vec, fp_nibble_count, fp_nibble_weight_exp

__all__ = ["fp_ip_batch_seed"]


def fp_ip_batch_seed(
    a: np.ndarray,
    b: np.ndarray,
    adder_width: int,
    software_precision: int | None = None,
    acc_fmt: FPFormat = FP32,
    in_fmt: FPFormat = FP16,
    multi_cycle: bool = False,
) -> FPIPBatchResult:
    """The seed emulation loop (decode per call, row-major nibble passes)."""
    sw = adder_width if software_precision is None else software_precision
    sp = safe_precision(adder_width, strict=multi_cycle and software_precision is not None
                        and adder_width < software_precision)
    if not multi_cycle and sw > adder_width:
        raise ValueError(
            f"single-cycle IPU({adder_width}) cannot reach software precision {sw}; "
            "set multi_cycle=True"
        )

    da, db = decode_array(in_fmt, a), decode_array(in_fmt, b)
    k_total = fp_nibble_count(in_fmt)
    nib_a = fp_magnitude_nibbles_vec(in_fmt, da.magnitude)  # (B, n, K)
    nib_b = fp_magnitude_nibbles_vec(in_fmt, db.magnitude)
    neg = (da.sign.astype(bool)) ^ (db.sign.astype(bool))   # product signs
    nib_a = np.where(neg[..., None], -nib_a, nib_a)

    exps = da.unbiased_exp + db.unbiased_exp                # (B, n)
    max_exp = exps.max(axis=1)                              # (B,)
    shifts = max_exp[:, None] - exps                        # (B, n) >= 0
    masked = shifts >= sw

    frac = -2 * fp_nibble_weight_exp(in_fmt, 0)             # 22 for FP16
    register = np.zeros(a.shape[0], dtype=np.int64)

    if multi_cycle and adder_width < sw:
        cyc_index = np.where(masked, -1, serve_cycles(shifts, sp))
        n_align = np.maximum(cyc_index.max(axis=1), 0) + 1
        max_cycles = int(n_align.max())
    else:
        cyc_index = np.where(masked, -1, 0)
        n_align = np.ones(a.shape[0], dtype=np.int64)
        max_cycles = 1

    safe_shift = np.minimum(shifts, 58)
    up, down = max(sp, 0), max(-sp, 0)
    if max_cycles == 1:
        nib_a = np.where(masked[..., None], 0, nib_a)
        for i in range(k_total):
            for j in range(k_total):
                products = nib_a[:, :, i] * nib_b[:, :, j]  # (B, n), |p| <= 225
                tree = ((products << up) >> (safe_shift + down)).sum(axis=1, dtype=np.int64)
                shift_left = 4 * (i + j) - frac - sp + ACC_FRACTION_BITS
                if shift_left >= 0:
                    register += tree << shift_left
                else:
                    register += tree >> (-shift_left)
    else:
        for i in range(k_total):
            for j in range(k_total):
                products = nib_a[:, :, i] * nib_b[:, :, j]
                for c in range(max_cycles):
                    serving = cyc_index == c
                    if not serving.any():
                        continue
                    coarse = c * sp
                    local = np.where(serving, safe_shift - coarse, 0)
                    word = np.where(serving, (products << up) >> (local + down), 0)
                    tree = word.sum(axis=1, dtype=np.int64)  # (B,)
                    lsb = 4 * (i + j) - frac - sp - coarse
                    shift_left = lsb + ACC_FRACTION_BITS
                    if shift_left >= 0:
                        register += tree << shift_left
                    else:
                        register += tree >> (-shift_left)

    values = register.astype(np.float64) * np.exp2((max_exp - ACC_FRACTION_BITS).astype(np.float64))
    rounded = values.astype(np_float_dtype(acc_fmt))
    iterations = k_total * k_total
    return FPIPBatchResult(
        values=values,
        rounded=rounded,
        max_exp=max_exp,
        alignment_cycles=n_align,
        total_cycles=n_align * iterations,
    )
