"""Multi-Cycle IPU conveniences (paper §3.2).

The MC-IPU shares its datapath with the plain IPU — the difference is purely
the EHU serve loop, which :class:`repro.ipu.ipu.InnerProductUnit` already
engages whenever ``adder_width < software_precision``. This module provides
the named constructors used throughout the experiments plus the batch
cycle-count kernels the tile simulator builds on.
"""

from __future__ import annotations

import numpy as np

from repro.fp.formats import FP16, FP32, FPFormat
from repro.ipu.ehu import mc_cycle_counts
from repro.ipu.ipu import SOFTWARE_PRECISION, InnerProductUnit, IPUConfig
from repro.ipu.theory import safe_precision

__all__ = ["make_mc_ipu", "make_baseline_ipu", "alignment_cycles_batch", "BASELINE_ADDER_WIDTH"]

# NVDLA-style baseline adder-tree width (paper §4.1: 38-bit wide adder tree).
BASELINE_ADDER_WIDTH = 38


def make_mc_ipu(
    adder_width: int,
    acc_fmt: FPFormat = FP32,
    n_inputs: int = 16,
    max_accumulations: int = 512,
) -> InnerProductUnit:
    """An MC-IPU(w) serving the software precision of ``acc_fmt``."""
    return InnerProductUnit(
        IPUConfig.for_accumulator(acc_fmt, n_inputs=n_inputs, adder_width=adder_width,
                                  max_accumulations=max_accumulations)
    )


def make_baseline_ipu(acc_fmt: FPFormat = FP32, n_inputs: int = 16) -> InnerProductUnit:
    """The paper's baseline: 38-bit adder tree, never multi-cycles."""
    return make_mc_ipu(BASELINE_ADDER_WIDTH, acc_fmt, n_inputs)


def alignment_cycles_batch(
    product_exps: np.ndarray,
    adder_width: int,
    software_precision: int,
    n_inputs: int,
    skip_empty_cycles: bool = False,
) -> np.ndarray:
    """Cycles per nibble iteration for a batch of inner products.

    ``product_exps`` has shape ``(B, n_inputs)`` (unbiased product
    exponents, EHU stage-1 output). This is the kernel the statistical tile
    simulator evaluates over sampled convolution inner products.
    """
    exps = np.asarray(product_exps, dtype=np.int64)
    if exps.ndim != 2 or exps.shape[1] != n_inputs:
        raise ValueError(f"expected shape (B, {n_inputs}), got {exps.shape}")
    max_exp = exps.max(axis=1, keepdims=True)
    shifts = max_exp - exps
    masked = shifts >= software_precision
    return mc_cycle_counts(
        shifts, masked, safe_precision(adder_width), adder_width,
        software_precision, skip_empty_cycles=skip_empty_cycles,
    )
