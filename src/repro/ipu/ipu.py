"""Bit-accurate scalar model of the mixed-precision IPU (paper §2, Figure 1).

This is the golden model: readable, arbitrary-precision, and structured
exactly like the hardware (nibble iterations over 5b×5b multipliers, local
shift + truncate, w-bit adder tree, swap-and-shift accumulator). The fast
vectorized emulation in :mod:`repro.ipu.vectorized` is validated against it.

A single class covers both the plain IPU and the multi-cycle MC-IPU: an
IPU(w) whose width meets the software precision runs one cycle per nibble
iteration (truncating large alignments), while a narrower unit decomposes
large alignments over multiple cycles via the EHU serve schedule (§3.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.fp.formats import FP16, FP32, FPClass, FPFormat
from repro.ipu.accumulator import Accumulator
from repro.ipu.datapath import AdderTree, LocalShifter, SignedMultiplier5x5
from repro.ipu.ehu import ExponentHandlingUnit
from repro.ipu.theory import safe_precision
from repro.nibble.decompose import fp_magnitude_to_nibbles, int_to_nibbles
from repro.nibble.schedule import fp_schedule, int_schedule

__all__ = ["IPUConfig", "InnerProductUnit", "FPIPResult", "SOFTWARE_PRECISION"]

# Minimum software precision preserving CPU-level accuracy (paper §3.1/§4.1):
# 16 bits when accumulating into FP16, 28 bits when accumulating into FP32.
SOFTWARE_PRECISION = {"fp16": 16, "fp32": 28}


@dataclass(frozen=True)
class IPUConfig:
    """Static parameters of one IPU instance.

    ``adder_width`` is the paper's IPU precision ``w``; ``software_precision``
    is the accuracy the accumulator type demands (alignment shifts at or
    beyond it are masked). ``w >= software_precision`` implies single-cycle
    operation; smaller ``w`` engages the multi-cycle serve loop.
    """

    n_inputs: int = 16
    adder_width: int = 28
    software_precision: int = 28
    max_accumulations: int = 512

    def __post_init__(self):
        if self.n_inputs < 1:
            raise ValueError("n_inputs must be >= 1")
        # MC operation needs a positive safe precision; single-cycle
        # (truncating) operation tolerates sub-product windows.
        safe_precision(self.adder_width, strict=not self.single_cycle)

    @property
    def sp(self) -> int:
        return safe_precision(self.adder_width)

    @property
    def single_cycle(self) -> bool:
        return self.adder_width >= self.software_precision

    @staticmethod
    def for_accumulator(acc_fmt: FPFormat, n_inputs: int = 16, adder_width: int = 28,
                        max_accumulations: int = 512) -> "IPUConfig":
        return IPUConfig(
            n_inputs=n_inputs,
            adder_width=adder_width,
            software_precision=SOFTWARE_PRECISION[acc_fmt.name],
            max_accumulations=max_accumulations,
        )


@dataclass
class FPIPResult:
    """Outcome of one FP inner-product operation."""

    bits: int
    fmt: FPFormat
    cycles: int
    alignment_cycles: int  # cycles of the worst nibble iteration (=1 if single)
    max_exp: int

    @property
    def value(self) -> float:
        return self.fmt.decode_value(self.bits)


class InnerProductUnit:
    """One IPU: n multipliers, local shifters, a w-bit adder tree, and an
    accumulator, driven by a (possibly shared) EHU."""

    def __init__(self, config: IPUConfig):
        self.config = config
        self.multiplier = SignedMultiplier5x5()
        self.shifter = LocalShifter(config.adder_width)
        self.adder_tree = AdderTree(config.n_inputs, config.adder_width)
        self.ehu = ExponentHandlingUnit(config.software_precision)
        self.accumulator = Accumulator(config.n_inputs, config.max_accumulations)

    # ------------------------------------------------------------------ INT

    def int_dot(
        self,
        a: list[int],
        b: list[int],
        a_bits: int = 4,
        b_bits: int = 4,
        signed: bool = True,
        accumulate: bool = False,
    ) -> tuple[int, int]:
        """Integer inner product via nibble iterations.

        Returns ``(result, cycles)``; exact for any supported widths. The
        cycle count is ``Ka * Kb`` (one cycle per nibble iteration, no
        alignment in INT mode).
        """
        if len(a) != len(b) or len(a) != self.config.n_inputs:
            raise ValueError("operand vectors must match the IPU width")
        if not accumulate:
            self.accumulator.reset()
        a_nibs = [int_to_nibbles(x, a_bits, signed) for x in a]
        b_nibs = [int_to_nibbles(x, b_bits, signed) for x in b]
        schedule = int_schedule(a_bits, b_bits)
        for it in schedule:
            products = [
                self.multiplier.multiply(an[it.i], bn[it.j])
                for an, bn in zip(a_nibs, b_nibs)
            ]
            # INT mode: local shift amount is always 0
            shifted = [self.shifter.shift(p, 0) for p in products]
            tree = self.adder_tree.sum(shifted)
            # strip the sp fraction bits of the shifter word convention
            # (exact: INT mode never shifts, so the low sp bits are zero)
            if self.config.sp >= 0:
                self.accumulator.add_integer(tree >> self.config.sp, it.significance)
            else:
                self.accumulator.add_integer(tree << -self.config.sp, it.significance)
        return self.accumulator.to_int(), len(schedule)

    # ------------------------------------------------------------------- FP

    def fp_dot(
        self,
        a_bits: list[int],
        b_bits: list[int],
        in_fmt: FPFormat = FP16,
        out_fmt: FPFormat = FP32,
        accumulate: bool = False,
    ) -> FPIPResult:
        """Floating-point inner product (Figure 2's approximate FP-IP).

        ``a_bits``/``b_bits`` are vectors of raw ``in_fmt`` patterns. The
        result is rounded into ``out_fmt`` unless ``accumulate`` keeps the
        running partial sum for chained calls (weight-stationary partials).
        """
        n = self.config.n_inputs
        if len(a_bits) != n or len(b_bits) != n:
            raise ValueError("operand vectors must match the IPU width")
        if not accumulate:
            self.accumulator.reset()

        da = [in_fmt.decode(x) for x in a_bits]
        db = [in_fmt.decode(x) for x in b_bits]
        for d in (*da, *db):
            if d.fpclass in (FPClass.INF, FPClass.NAN):
                raise ValueError("FP-IP operands must be finite")

        plan = self.ehu.plan([d.unbiased_exp for d in da], [d.unbiased_exp for d in db])
        sign = [x.sign ^ y.sign for x, y in zip(da, db)]
        a_nibs = [fp_magnitude_to_nibbles(in_fmt, d.magnitude) for d in da]
        b_nibs = [fp_magnitude_to_nibbles(in_fmt, d.magnitude) for d in db]

        if self.config.single_cycle:
            groups = [list(range(n))]
        else:
            groups = self.ehu.serve_schedule(plan, self.config.sp)
        alignment_cycles = len(groups)

        schedule = fp_schedule(in_fmt)
        frac = _product_fraction_bits(in_fmt)
        for it in schedule:
            for cycle, members in enumerate(groups):
                coarse = 0 if self.config.single_cycle else cycle * self.config.sp
                inputs = []
                for k in range(n):
                    serving = (k in members) and not plan.masked[k]
                    if not serving:
                        inputs.append(0)  # bitwise-AND masking (Figure 4)
                        continue
                    p = self.multiplier.multiply(
                        -a_nibs[k][it.i] if sign[k] else a_nibs[k][it.i],
                        b_nibs[k][it.j],
                    )
                    inputs.append(self.shifter.shift(p, plan.shifts[k] - coarse))
                tree = self.adder_tree.sum(inputs)
                lsb_weight = it.significance - frac - self.config.sp - coarse
                self.accumulator.add(tree, lsb_weight, plan.max_exp)

        cycles = len(schedule) * alignment_cycles
        return FPIPResult(
            bits=self.accumulator.to_format(out_fmt),
            fmt=out_fmt,
            cycles=cycles,
            alignment_cycles=alignment_cycles,
            max_exp=plan.max_exp,
        )


def _product_fraction_bits(fmt: FPFormat) -> int:
    """Fraction bits of a nibble-pair product at the (0,0) significance.

    For FP16 the product of two magnitudes carries 22 fraction bits
    (paper: "each FP number has 3-bit int and 22-bit fraction positions");
    nibble (i, j) has significance ``4*(i+j) - 2*(man_bits + shift)``.
    """
    from repro.nibble.decompose import fp_nibble_weight_exp

    return -2 * fp_nibble_weight_exp(fmt, 0)
