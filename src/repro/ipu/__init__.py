"""The paper's core contribution: mixed-precision (MC-)IPU datapath models."""

from repro.ipu.accumulator import ACC_FRACTION_BITS, Accumulator
from repro.ipu.datapath import AdderTree, LocalShifter, SignedMultiplier5x5
from repro.ipu.ehu import AlignmentPlan, ExponentHandlingUnit, mc_cycle_counts, serve_cycles
from repro.ipu.engine import (
    KernelPoint,
    PackedOperands,
    fp_ip_packed,
    fp_ip_points,
    pack_operands,
)
from repro.ipu.ipu import SOFTWARE_PRECISION, FPIPResult, InnerProductUnit, IPUConfig
from repro.ipu.mc_ipu import (
    BASELINE_ADDER_WIDTH,
    alignment_cycles_batch,
    make_baseline_ipu,
    make_mc_ipu,
)
from repro.ipu.reference import cpu_fp32_dot, cpu_fp32_dot_batch, exact_fp_ip, masked_exact_fp_ip
from repro.ipu.theory import (
    MAX_FP16_PRODUCT_SHIFT,
    PRODUCT_MAGNITUDE_BITS,
    min_adder_width_for_exact,
    safe_precision,
    theorem1_bound,
)
from repro.ipu.vectorized import FPIPBatchResult, fp_ip_batch

__all__ = [
    "ACC_FRACTION_BITS", "Accumulator",
    "AdderTree", "LocalShifter", "SignedMultiplier5x5",
    "AlignmentPlan", "ExponentHandlingUnit", "mc_cycle_counts", "serve_cycles",
    "SOFTWARE_PRECISION", "FPIPResult", "InnerProductUnit", "IPUConfig",
    "BASELINE_ADDER_WIDTH", "alignment_cycles_batch", "make_baseline_ipu", "make_mc_ipu",
    "cpu_fp32_dot", "cpu_fp32_dot_batch", "exact_fp_ip", "masked_exact_fp_ip",
    "MAX_FP16_PRODUCT_SHIFT", "PRODUCT_MAGNITUDE_BITS",
    "min_adder_width_for_exact", "safe_precision", "theorem1_bound",
    "FPIPBatchResult", "fp_ip_batch",
    "KernelPoint", "PackedOperands", "fp_ip_packed", "fp_ip_points", "pack_operands",
]
