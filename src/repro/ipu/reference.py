"""Reference inner-product implementations the emulation is judged against.

Three tiers, in decreasing exactness:

- ``exact_fp_ip``: Kulisch-style exact accumulation, single terminal
  rounding (no alignment loss at all);
- ``masked_exact_fp_ip``: exact accumulation of the *unmasked* products
  floored at the accumulator's 30-fraction-bit LSB — the best any MC-IPU
  can do, used to verify the MC datapath bit-for-bit;
- ``cpu_fp32_dot``: the "FP32 CPU" result the paper compares against.
"""

from __future__ import annotations

import numpy as np

from repro.fp.formats import FP16, FP32, FPFormat
from repro.fp.kulisch import KulischAccumulator
from repro.fp.softfloat import decode_exact
from repro.ipu.accumulator import ACC_FRACTION_BITS

__all__ = ["exact_fp_ip", "masked_exact_fp_ip", "cpu_fp32_dot", "cpu_fp32_dot_batch"]


def exact_fp_ip(
    a_bits: list[int], b_bits: list[int], in_fmt: FPFormat = FP16, out_fmt: FPFormat = FP32
) -> int:
    """Exact inner product of bit-pattern vectors, rounded once to ``out_fmt``."""
    acc = KulischAccumulator(in_fmt)
    for x, y in zip(a_bits, b_bits):
        acc.add_product(x, y)
    return acc.round_to(out_fmt)


def masked_exact_fp_ip(
    a_bits: list[int],
    b_bits: list[int],
    software_precision: int,
    in_fmt: FPFormat = FP16,
) -> tuple[int, int, int]:
    """Exact-within-masking reference: ``(significand, scale, acc_lsb_scale)``.

    Products whose alignment to the max product exponent is at least
    ``software_precision`` are dropped (EHU stage 4); the rest accumulate
    *exactly* (no flooring). An MC-IPU whose serve loop covers the software
    precision differs from this value only through its per-(iteration, cycle)
    accumulator floorings, each of which loses less than one accumulator ULP
    ``2**acc_lsb_scale`` downward — the property the tests assert.
    """
    terms = []
    exps = []
    for x, y in zip(a_bits, b_bits):
        sx, ex = decode_exact(in_fmt, x)
        sy, ey = decode_exact(in_fmt, y)
        terms.append((sx * sy, ex + ey))
        exps.append(ex + ey + 2 * in_fmt.man_bits)  # product exponent ê_a + ê_b
    max_exp = max(exps)
    lsb = max_exp - ACC_FRACTION_BITS
    kept = [t for t, e in zip(terms, exps) if max_exp - e < software_precision]
    if not kept:
        return 0, 0, lsb
    scale = min(s for _, s in kept)
    total = sum(sig << (s - scale) for sig, s in kept)
    return total, scale, lsb


def cpu_fp32_dot(a: np.ndarray, b: np.ndarray) -> np.float32:
    """Sequential float32 dot product — the paper's CPU baseline."""
    acc = np.float32(0)
    for x, y in zip(np.asarray(a, np.float32), np.asarray(b, np.float32)):
        acc = np.float32(acc + x * y)
    return acc


def cpu_fp32_dot_batch(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Vectorized float32 reference over a batch of shape ``(B, n)``.

    Computed in float64 and rounded once to float32: for the short vectors
    used here this matches sequential float32 accumulation to within the
    comparison tolerance of the error analysis, and it is the more faithful
    stand-in for "FP32 CPU with FMA" the paper measured against.
    """
    exact = np.sum(np.asarray(a, np.float64) * np.asarray(b, np.float64), axis=-1)
    return exact.astype(np.float32)
