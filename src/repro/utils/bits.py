"""Bit-manipulation helpers used throughout the datapath models.

All helpers operate on Python ints (arbitrary precision) or NumPy integer
arrays and follow hardware conventions: two's complement for signed fields,
arithmetic right shift truncates toward negative infinity (floor), and field
widths are explicit everywhere.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "mask",
    "get_field",
    "set_field",
    "sign_extend",
    "to_twos_complement",
    "from_twos_complement",
    "bit_length_signed",
    "clz",
    "ceil_log2",
    "floor_div_pow2",
    "round_to_nearest_even",
    "popcount",
]


def mask(width: int) -> int:
    """Return an all-ones mask of ``width`` bits (``width`` may be 0)."""
    if width < 0:
        raise ValueError(f"mask width must be non-negative, got {width}")
    return (1 << width) - 1


def get_field(value: int, lo: int, width: int) -> int:
    """Extract ``width`` bits of ``value`` starting at bit ``lo``."""
    return (value >> lo) & mask(width)


def set_field(value: int, lo: int, width: int, field: int) -> int:
    """Return ``value`` with bits [lo, lo+width) replaced by ``field``."""
    m = mask(width)
    if field & ~m:
        raise ValueError(f"field 0x{field:x} does not fit in {width} bits")
    return (value & ~(m << lo)) | (field << lo)


def sign_extend(value: int, width: int) -> int:
    """Interpret the low ``width`` bits of ``value`` as two's complement."""
    value &= mask(width)
    if value & (1 << (width - 1)):
        return value - (1 << width)
    return value


def to_twos_complement(value: int, width: int) -> int:
    """Encode a signed int into a ``width``-bit two's complement pattern."""
    lo, hi = -(1 << (width - 1)), (1 << (width - 1)) - 1
    if not lo <= value <= hi:
        raise OverflowError(f"{value} does not fit in {width}-bit two's complement")
    return value & mask(width)


def from_twos_complement(pattern: int, width: int) -> int:
    """Decode a ``width``-bit two's complement pattern into a signed int."""
    return sign_extend(pattern, width)


def bit_length_signed(value: int) -> int:
    """Minimum two's complement width that can hold ``value`` (incl. sign)."""
    if value >= 0:
        return value.bit_length() + 1
    return (-value - 1).bit_length() + 1


def clz(value: int, width: int) -> int:
    """Count leading zeros of ``value`` within a ``width``-bit field."""
    value &= mask(width)
    return width - value.bit_length()


def ceil_log2(n: int) -> int:
    """Smallest k with 2**k >= n (n >= 1)."""
    if n < 1:
        raise ValueError(f"ceil_log2 requires n >= 1, got {n}")
    return (n - 1).bit_length()


def floor_div_pow2(value, shift):
    """Arithmetic right shift (floor division by 2**shift).

    Works on Python ints and NumPy arrays alike; NumPy's ``>>`` on signed
    integers already implements the arithmetic (floor) semantics hardware
    shifters use.
    """
    if isinstance(value, np.ndarray) or isinstance(shift, np.ndarray):
        return np.right_shift(value, shift)
    return value >> shift


def round_to_nearest_even(value: int, shift: int) -> int:
    """Round ``value / 2**shift`` to the nearest integer, ties to even.

    This is the RNE rounding used when a wide accumulator result is
    reformatted to a standard FP type.
    """
    if shift <= 0:
        return value << (-shift)
    q = value >> shift
    rem = value & mask(shift)
    half = 1 << (shift - 1)
    if rem > half or (rem == half and (q & 1)):
        q += 1
    return q


def popcount(value: int) -> int:
    """Number of set bits of a non-negative int."""
    if value < 0:
        raise ValueError("popcount requires a non-negative value")
    return bin(value).count("1")
