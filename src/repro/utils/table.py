"""Minimal ASCII table rendering for experiment and benchmark output.

Every experiment driver prints its results as the same rows/series the paper
reports; this module keeps that output consistent and dependency-free.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["render_table", "format_cell"]


def format_cell(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        a = abs(value)
        if value == 0:
            return "0"
        if a >= 1000 or a < 1e-3:
            return f"{value:.3e}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render a left-padded ASCII table; returns the string (caller prints)."""
    srows = [[format_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in srows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} headers"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return " | ".join(c.rjust(w) for c, w in zip(cells, widths))

    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(sep))
    lines.append(fmt_row(list(headers)))
    lines.append(sep)
    lines.extend(fmt_row(row) for row in srows)
    return "\n".join(lines)
