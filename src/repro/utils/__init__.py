"""Shared helpers: bit manipulation, exact fixed point, tables, RNG."""

from repro.utils.bits import (
    bit_length_signed,
    ceil_log2,
    clz,
    floor_div_pow2,
    from_twos_complement,
    get_field,
    mask,
    popcount,
    round_to_nearest_even,
    set_field,
    sign_extend,
    to_twos_complement,
)
from repro.utils.fixedpoint import FixedPoint
from repro.utils.rng import as_generator, spawn
from repro.utils.table import format_cell, render_table

__all__ = [
    "bit_length_signed", "ceil_log2", "clz", "floor_div_pow2",
    "from_twos_complement", "get_field", "mask", "popcount",
    "round_to_nearest_even", "set_field", "sign_extend", "to_twos_complement",
    "FixedPoint", "as_generator", "spawn", "format_cell", "render_table",
]
