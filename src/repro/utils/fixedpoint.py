"""Arbitrary-precision fixed-point value with an attached binary exponent.

The accumulators in the paper hold *non-normalized* signed-magnitude values:
an integer register interpreted as ``register * 2**(exponent - frac_bits)``.
:class:`FixedPoint` models that pairing exactly with Python ints so the
datapath models can be checked bit-for-bit against wide references.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.bits import floor_div_pow2

__all__ = ["FixedPoint"]


@dataclass(frozen=True)
class FixedPoint:
    """A value ``significand * 2**scale`` with exact integer significand.

    ``scale`` is the weight (in powers of two) of the significand's LSB.
    The class is immutable; arithmetic returns new instances. Addition
    aligns exactly (no truncation) — truncation is an explicit operation
    because in the hardware it only ever happens at specific shifters.
    """

    significand: int
    scale: int

    @staticmethod
    def zero() -> "FixedPoint":
        return FixedPoint(0, 0)

    @staticmethod
    def from_float(value: float, frac_bits: int = 64) -> "FixedPoint":
        """Exact conversion of a binary float (floats are dyadic rationals)."""
        f = float(value)
        if f != f or f in (float("inf"), float("-inf")):
            raise ValueError(f"cannot represent {value} as FixedPoint")
        m, e = _float_to_mantissa_exp(f)
        del frac_bits  # conversion is always exact; kept for API clarity
        return FixedPoint(m, e)

    def to_float(self) -> float:
        return float(self.significand) * 2.0**self.scale

    def is_zero(self) -> bool:
        return self.significand == 0

    def normalized(self) -> "FixedPoint":
        """Strip trailing zero bits so equal values compare equal."""
        s, e = self.significand, self.scale
        if s == 0:
            return FixedPoint(0, 0)
        while s % 2 == 0:
            s //= 2
            e += 1
        return FixedPoint(s, e)

    def __add__(self, other: "FixedPoint") -> "FixedPoint":
        lo = min(self.scale, other.scale)
        a = self.significand << (self.scale - lo)
        b = other.significand << (other.scale - lo)
        return FixedPoint(a + b, lo)

    def __sub__(self, other: "FixedPoint") -> "FixedPoint":
        return self + FixedPoint(-other.significand, other.scale)

    def __neg__(self) -> "FixedPoint":
        return FixedPoint(-self.significand, self.scale)

    def __mul__(self, other: "FixedPoint") -> "FixedPoint":
        return FixedPoint(self.significand * other.significand, self.scale + other.scale)

    def shifted(self, right: int) -> "FixedPoint":
        """Exact shift: moves the binary point without losing bits."""
        return FixedPoint(self.significand, self.scale - right)

    def truncated_to_scale(self, new_scale: int) -> "FixedPoint":
        """Drop bits below ``2**new_scale`` (floor, as a hardware shifter does)."""
        if new_scale <= self.scale:
            return FixedPoint(self.significand << (self.scale - new_scale), new_scale)
        return FixedPoint(floor_div_pow2(self.significand, new_scale - self.scale), new_scale)

    def abs_error_vs(self, other: "FixedPoint") -> float:
        return abs((self - other).to_float())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FixedPoint):
            return NotImplemented
        a, b = self.normalized(), other.normalized()
        return a.significand == b.significand and (a.significand == 0 or a.scale == b.scale)

    def __hash__(self) -> int:
        n = self.normalized()
        return hash((n.significand, n.scale))


def _float_to_mantissa_exp(f: float) -> tuple[int, int]:
    """Decompose a finite float into (integer mantissa, exponent), exactly."""
    m, e = f.as_integer_ratio()
    # denominator is a power of two for binary floats
    shift = e.bit_length() - 1
    assert e == 1 << shift, "float denominator must be a power of two"
    return m, -shift
