"""Seeded random-generator helpers.

All stochastic code in the library takes either an integer seed or a
``numpy.random.Generator``; this module centralizes the coercion so results
are reproducible end to end.
"""

from __future__ import annotations

import numpy as np

__all__ = ["as_generator", "spawn"]


def as_generator(seed_or_rng: int | np.random.Generator | None) -> np.random.Generator:
    """Coerce a seed (or None, or an existing Generator) into a Generator."""
    if isinstance(seed_or_rng, np.random.Generator):
        return seed_or_rng
    return np.random.default_rng(seed_or_rng)


def spawn(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Derive ``n`` independent child generators from ``rng``."""
    return [np.random.default_rng(s) for s in rng.integers(0, 2**63 - 1, size=n)]
