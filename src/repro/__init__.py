"""repro: reproduction of "Rethinking Floating Point Overheads for Mixed
Precision DNN Accelerators" (Abdel-Aziz et al., MLSys 2021).

Subpackages
-----------
- ``repro.fp``       -- FP formats, bit-exact softfloat, Kulisch accumulator
- ``repro.nibble``   -- temporal nibble decomposition of INT/FP operands
- ``repro.ipu``      -- the mixed-precision (MC-)IPU datapath models
- ``repro.tile``     -- cycle-accurate convolution-tile simulator
- ``repro.hw``       -- gate-level area/power models (7 nm synthesis substitute)
- ``repro.nn``       -- from-scratch NumPy DNN substrate and workload zoo
- ``repro.analysis`` -- error sweeps, exponent histograms, accuracy evals
- ``repro.experiments`` -- drivers regenerating every table/figure
"""

__version__ = "0.1.0"
