"""Horizontal scale-out: shard a sweep across N service instances.

:class:`ShardPlan` deterministically splits a spec into disjoint sub-specs
and merges shard results byte-identically to the unsharded path;
:class:`FleetCoordinator` fans a plan out to ``http://`` endpoints and/or
in-process services (:class:`LocalEndpoint`) with retry, backpressure
handling, and dead-endpoint re-dispatch. Drive it from the runner with
``--fleet url1,url2 --shards K``; see ``docs/service.md`` ("Scaling out").
"""

from repro.fleet.coordinator import FleetCoordinator, FleetError, LocalEndpoint
from repro.fleet.shard import Shard, ShardMergeError, ShardPlan

__all__ = ["FleetCoordinator", "FleetError", "LocalEndpoint", "Shard",
           "ShardMergeError", "ShardPlan"]
