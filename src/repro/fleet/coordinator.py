"""Fan a :class:`~repro.fleet.ShardPlan` out to N endpoints, merge the results.

The coordinator is the horizontal layer over the sweep service: build a
plan, dispatch each shard to an endpoint (round-robin by shard index),
long-poll results, and :meth:`~repro.fleet.ShardPlan.merge_payloads` them
back into the exact payload one unsharded service run would have produced.

Endpoints are anything speaking the client protocol — ``http://...`` URLs
(wrapped in :class:`~repro.service.ServiceClient`), in-process
:class:`~repro.service.SweepService` instances (wrapped in
:class:`LocalEndpoint`), or any object with ``submit``/``result``/
``health``. Mixing kinds is fine; a laptop session can join a fleet of
remote services.

Failure policy: a *transport* failure (connection refused, job timeout, an
injected chaos fault) triggers bounded retry under a shared
:class:`~repro.chaos.RetryPolicy` and — when a health probe says the
endpoint is gone — opens that endpoint's :class:`~repro.chaos.CircuitBreaker`
and re-dispatches its shards to survivors, so a killed fleet member slows
the sweep down instead of failing it. An open breaker is not forever: after
its cooldown the next sweep health-probes the endpoint (``/v1/healthz``)
and, on success, closes the breaker — recovered endpoints *rejoin* the
rotation (``stats()["rejoins"]``). When every endpoint is down the
coordinator degrades gracefully: remaining shards run on a lazily built
in-process :class:`~repro.service.SweepService`
(``stats()["shards_local"]``), and the merge stays byte-identical because
the fallback runs the exact service compute path. A *job* failure (the
service computed and said "error") or a 4xx rejection is deterministic:
every endpoint would fail the same way, so it fails the sweep fast with
:class:`FleetError` instead of burning retries.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor

from repro.api.spec import spec_from_kind, spec_kind_of
from repro.chaos.breaker import CLOSED, CircuitBreaker
from repro.chaos.engine import chaos_hook
from repro.chaos.errors import InjectedFault
from repro.chaos.retry import RetryPolicy
from repro.fleet.shard import ShardPlan
from repro.obs.metrics import REGISTRY, Family
from repro.obs.trace import (trace_attach, trace_capture, trace_ingest,
                             trace_span, trace_wire)
from repro.service.client import ServiceClient, ServiceError, _as_spec_dict
from repro.store import ResultStore
from repro.store.fingerprint import fingerprint as _fingerprint

__all__ = ["FleetCoordinator", "FleetError", "LocalEndpoint"]


class FleetError(RuntimeError):
    """The fleet could not complete a sweep (all endpoints dead, retries
    exhausted, or a shard job failed deterministically)."""


class LocalEndpoint:
    """The endpoint protocol over an in-process
    :class:`~repro.service.SweepService` — lets the coordinator mix local
    sessions into a fleet (or run entirely in-process, as the tests and
    the benchmark harness do) with no HTTP in the loop."""

    def __init__(self, service, name: str = "local"):
        self.service = service
        self.url = f"local:{name}"

    def submit(self, spec, kind: str | None = None, busy_timeout: float = 60.0) -> dict:
        spec_dict = _as_spec_dict(spec)
        kind = kind or spec_kind_of(spec_dict)
        deadline = time.monotonic() + busy_timeout
        while True:
            try:
                # mirror the HTTP client's X-Repro-Trace header: hand the
                # current span over so the in-process job joins the trace
                job, coalesced = self.service.submit(kind, spec_dict,
                                                     trace=trace_wire())
            except (ValueError, KeyError, TypeError) as exc:
                # mirror the HTTP 400: a malformed spec is deterministic
                raise ServiceError(f"invalid {kind} spec: {exc}",
                                   status=400) from exc
            except RuntimeError as exc:
                busy_after = getattr(exc, "retry_after", None)
                if busy_after is None:  # closed, not busy: a dead endpoint
                    raise ServiceError(str(exc)) from exc
                if time.monotonic() + busy_after > deadline:
                    raise ServiceError(str(exc), status=429,
                                       retry_after=busy_after) from exc
                time.sleep(busy_after)
                continue
            return {"job": job.id, "coalesced": coalesced,
                    "fingerprint": job.fingerprint, "status": job.status}

    def result(self, job_id: str, timeout: float = 600.0) -> dict:
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ServiceError(f"job {job_id!r} did not finish in {timeout}s")
            job = self.service.job(job_id, wait=min(remaining, 10.0))
            if job is None:
                raise ServiceError(f"unknown job {job_id!r}", status=404)
            if job.status == "done":
                return job.result
            if job.status == "error":
                raise ServiceError(f"job {job_id!r} failed: {job.error}",
                                   payload=job.as_dict(include_result=False))

    def health(self) -> dict:
        return self.service.healthz()

    def stats(self) -> dict:
        return self.service.stats()


def _as_endpoint(endpoint, token: str | None):
    if isinstance(endpoint, str):
        return ServiceClient(endpoint, token=token)
    if hasattr(endpoint, "submit") and hasattr(endpoint, "result"):
        return endpoint
    # a bare SweepService (has submit but no result long-poll)
    if hasattr(endpoint, "job") and hasattr(endpoint, "healthz"):
        return LocalEndpoint(endpoint)
    raise TypeError(f"cannot use {type(endpoint).__name__} as a fleet endpoint")


def _collect_fleet_metrics(coordinator) -> list:
    """Metrics-registry adapter: shard/retry counters plus one breaker-state
    gauge per endpoint (0 closed, 1 half-open, 2 open), so a scrape sees
    breaker flips and retry storms without parsing ``stats()``."""
    base = dict(coordinator._metrics_labels)
    with coordinator._lock:
        counters = Family("repro_fleet", "counter", "Fleet coordinator counters.")
        for name in ("shards_completed", "shards_skipped_warm", "shards_local",
                     "retries", "redispatches", "rejoins"):
            counters.add(getattr(coordinator, f"_{name}"),
                         {**base, "counter": name}, suffix="_total")
        jobs = Family("repro_fleet_endpoint_jobs", "counter",
                      "Jobs completed per endpoint.")
        state = Family("repro_fleet_breaker_state", "gauge",
                       "Endpoint breaker state (0 closed, 1 half-open, 2 open).")
        order = {"closed": 0, "half-open": 1, "open": 2}
        for i, ep in enumerate(coordinator.endpoints):
            labels = {**base, "endpoint": ep.url}
            jobs.add(coordinator._jobs_by_endpoint[i], labels, suffix="_total")
            state.add(order.get(coordinator._breakers[i].state, 2), labels)
    return [counters, jobs, state]


def _is_deterministic(exc: ServiceError) -> bool:
    """True when retrying elsewhere cannot help: the job itself failed
    (the spec computes to an error on any endpoint) or the request was
    rejected as invalid/unauthorized. 429 never reaches here — the
    endpoint's ``submit`` retries it internally via ``Retry-After``."""
    if exc.payload is not None and exc.payload.get("status") == "error":
        return True
    return exc.status is not None and 400 <= exc.status < 500 and exc.status != 429


class FleetCoordinator:
    """See module docstring.

    ``shards=None`` defaults to one shard per endpoint. ``retries`` bounds
    *additional* attempts per shard beyond the first, with exponential
    backoff ``backoff * 2**attempt`` capped at ``max_backoff`` between
    attempts. ``timeout`` is per shard attempt (submit + long-poll).

    ``store`` (a :class:`~repro.store.ResultStore` or directory path) adds
    coordinator-side result caching: each shard's finished service payload
    is persisted keyed by ``(kind, sub-spec fingerprint)``, and before
    dispatching a shard the coordinator consults the store — a store-warm
    shard is served from disk without touching any endpoint (counted in
    ``stats()["shards_skipped_warm"]``). Payloads are merged the same way
    either path, so a warm run's output is byte-identical to a cold one.
    The endpoints' own stores are unrelated (and may not be shared
    filesystems); this cache lives with the coordinator.

    ``retry`` overrides the retries/backoff/max_backoff trio with an
    explicit :class:`~repro.chaos.RetryPolicy`. ``breaker_cooldown``
    (seconds) is how long a failed endpoint sits out before the next
    health-probed rejoin attempt. ``local_fallback=False`` restores the
    pre-chaos behavior of raising :class:`FleetError` when every endpoint
    is down.
    """

    def __init__(self, endpoints, shards: int | None = None,
                 timeout: float = 600.0, retries: int = 3,
                 backoff: float = 0.25, max_backoff: float = 4.0,
                 token: str | None = None, store=None,
                 retry: RetryPolicy | None = None,
                 breaker_cooldown: float = 2.0,
                 local_fallback: bool = True):
        self.endpoints = [_as_endpoint(e, token) for e in endpoints]
        if not self.endpoints:
            raise ValueError("a fleet needs at least one endpoint")
        if shards is not None and shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.shards = shards
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.max_backoff = max_backoff
        self.retry = retry if retry is not None else RetryPolicy(
            attempts=retries + 1, backoff=backoff, max_backoff=max_backoff)
        self.local_fallback = local_fallback
        self.store = ResultStore.coerce(store)
        self._lock = threading.Lock()
        self._breakers = [CircuitBreaker(cooldown=breaker_cooldown)
                          for _ in self.endpoints]
        self._local_service = None
        self._jobs_by_endpoint = [0] * len(self.endpoints)
        self._retries = 0
        self._redispatches = 0
        self._rejoins = 0
        self._stragglers: list[dict] = []
        self._shards_completed = 0
        self._shards_skipped_warm = 0
        self._shards_local = 0
        self._metrics_labels = {"instance": REGISTRY.next_instance("fleet")}
        REGISTRY.register_object(self, _collect_fleet_metrics,
                                 prefix="repro_fleet")

    # -- dispatch ----------------------------------------------------------

    def run(self, spec, kind: str | None = None) -> dict:
        """Shard ``spec`` (object / dict / JSON string / path, either
        kind), fan the shards out, and return the merged service-shape
        payload — byte-identical to an unsharded run of the parent."""
        spec_dict = _as_spec_dict(spec)
        kind = kind or spec_kind_of(spec_dict)
        plan = ShardPlan.build(spec_dict, self.shards or len(self.endpoints))
        started = time.monotonic()
        durations = [0.0] * len(plan.shards)
        with trace_span("fleet.sweep", kind=plan.kind, shards=len(plan.shards),
                        endpoints=len(self.endpoints)):
            state = trace_capture()

            def run_one(shard):
                t0 = time.monotonic()
                with trace_attach(state):
                    payload = self._cached_dispatch(plan.kind, shard.index,
                                                    shard.spec)
                durations[shard.index] = time.monotonic() - t0
                return payload

            with ThreadPoolExecutor(
                    max_workers=min(len(plan.shards), 4 * len(self.endpoints)),
                    thread_name_prefix="fleet-shard") as pool:
                payloads = list(pool.map(run_one, plan.shards))
            self._note_stragglers(plan, durations, time.monotonic() - started)
            return plan.merge_payloads(payloads)

    def run_specs(self, specs, kind: str | None = None,
                  timeout: float | None = None) -> list[dict]:
        """Dispatch one whole spec per job (no sharding) and return the
        service payloads in spec order.

        This is the fan-out primitive :class:`repro.search.SearchSession`
        uses for rung evaluation — a rung is an arbitrary candidate
        subset, not a cross product, so it ships as N independent
        single-point specs rather than a :class:`~repro.fleet.ShardPlan`.
        Each spec gets the full failure policy (retry, redispatch, warm
        store skip) of a plan shard. ``timeout`` overrides the
        coordinator's per-attempt timeout for this call — search rung
        deadlines pass their remaining budget here so a hung rung fails
        fast instead of waiting out the fleet default.
        """
        spec_dicts = [_as_spec_dict(s) for s in specs]
        if not spec_dicts:
            return []
        kind = kind or spec_kind_of(spec_dicts[0])
        parsed = [spec_from_kind(kind, d) for d in spec_dicts]
        with trace_span("fleet.sweep", kind=kind, shards=len(parsed),
                        endpoints=len(self.endpoints), fanout="specs"):
            state = trace_capture()

            def run_one(i):
                with trace_attach(state):
                    return self._cached_dispatch(kind, i, parsed[i],
                                                 timeout=timeout)

            with ThreadPoolExecutor(
                    max_workers=min(len(parsed), 4 * len(self.endpoints)),
                    thread_name_prefix="fleet-spec") as pool:
                return list(pool.map(run_one, range(len(parsed))))

    # -- store cache -------------------------------------------------------

    @staticmethod
    def _payload_key(kind: str, spec) -> str:
        return _fingerprint({"fleet_payload": {"kind": kind,
                                               "spec": spec.fingerprint()}})

    def _cached_dispatch(self, kind: str, index: int, spec,
                         timeout: float | None = None) -> dict:
        """One unit of fleet work: serve it store-warm, or dispatch it and
        persist the payload. Spec fingerprints exclude presentation fields
        (``name``/``executor``), and the merge layers never read a
        payload's embedded name — so a renamed parent still hits."""
        if self.store is not None:
            payload = self.store.get_json("fleet-payload",
                                          self._payload_key(kind, spec))
            if payload is not None:
                with self._lock:
                    self._shards_skipped_warm += 1
                return payload
        payload = self._run_shard(kind, index, spec, timeout=timeout)
        spans = payload.pop("trace_spans", None)
        if spans:
            # merge the shard service's spans into this trace *before* the
            # payload is persisted or merged — telemetry never reaches the
            # store or the result, so warm/cold stay byte-identical
            trace_ingest(spans)
        if self.store is not None:
            self.store.put_json("fleet-payload",
                                self._payload_key(kind, spec), payload)
        return payload

    def _endpoint_ready(self, ep_idx: int) -> bool:
        """Closed breaker → ready. Open breaker → ready only once the
        cooldown has elapsed *and* a ``/v1/healthz`` probe succeeds, which
        closes the breaker again (a rejoin). Failed probes re-open it."""
        breaker = self._breakers[ep_idx]
        if breaker.state == CLOSED:
            return True
        if not breaker.allow():  # cooling down, or another thread probes
            return False
        try:
            self.endpoints[ep_idx].health()
        except Exception:
            breaker.record_failure()
            return False
        breaker.record_success()
        with self._lock:
            self._rejoins += 1
        return True

    def _live_rotation(self, start: int):
        """Endpoint indices to try, preferred first, skipping open breakers
        (probing half-open ones back in when they recover)."""
        n = len(self.endpoints)
        return [(start + i) % n for i in range(n)
                if self._endpoint_ready((start + i) % n)]

    def _run_shard(self, kind: str, index: int, spec,
                   timeout: float | None = None) -> dict:
        preferred = index % len(self.endpoints)
        timeout = self.timeout if timeout is None else timeout
        delays = self.retry.delays()
        last_error: Exception | None = None
        for attempt in range(self.retry.attempts):
            rotation = self._live_rotation(preferred)
            if not rotation:
                if self.local_fallback:
                    return self._run_local(kind, index, spec, timeout)
                raise FleetError(
                    f"shard {index}: all {len(self.endpoints)} fleet "
                    f"endpoints are dead (last error: {last_error})")
            for ep_idx in rotation:
                endpoint = self.endpoints[ep_idx]
                try:
                    with trace_span("fleet.shard", shard=index,
                                    endpoint=endpoint.url, attempt=attempt):
                        chaos_hook("fleet.shard", shard=index, endpoint=ep_idx)
                        ticket = endpoint.submit(spec, kind=kind)
                        payload = endpoint.result(ticket["job"],
                                                  timeout=timeout)
                except (ServiceError, InjectedFault) as exc:
                    if isinstance(exc, ServiceError) and _is_deterministic(exc):
                        raise FleetError(
                            f"shard {index} ({spec.name}) failed "
                            f"on {endpoint.url}: {exc}") from exc
                    last_error = exc
                    self._note_failure(ep_idx)
                    continue  # try the next live endpoint, no backoff
                with self._lock:
                    self._jobs_by_endpoint[ep_idx] += 1
                    self._shards_completed += 1
                    if ep_idx != preferred:  # landed on a survivor
                        self._redispatches += 1
                return payload
            delay = next(delays, None)
            if delay is None:
                break
            time.sleep(delay)
        raise FleetError(
            f"shard {index} ({spec.name}) exhausted "
            f"{self.retry.attempts} attempts; last error: {last_error}")

    def _note_failure(self, ep_idx: int) -> None:
        """Book-keep a transport failure and health-probe the endpoint —
        unreachable opens its circuit breaker (its other shards re-route
        immediately, and it sits out ``breaker_cooldown`` before a rejoin
        probe); reachable means the *job* was slow/lost, leave it in
        rotation."""
        alive = True
        try:
            self.endpoints[ep_idx].health()
        except Exception:
            alive = False
        if not alive:
            self._breakers[ep_idx].record_failure()
        with self._lock:
            self._retries += 1

    # -- graceful degradation ----------------------------------------------

    def _ensure_local_service(self):
        """The all-endpoints-down fallback: an in-process
        :class:`~repro.service.SweepService` sharing the coordinator's
        store. It runs the exact service compute path, so payloads (and
        therefore merges) stay byte-identical to the fleet path."""
        with self._lock:
            if self._local_service is None:
                from repro.service.server import SweepService

                self._local_service = SweepService(store=self.store)
            return self._local_service

    def _run_local(self, kind: str, index: int, spec, timeout: float) -> dict:
        endpoint = LocalEndpoint(self._ensure_local_service(), name="fallback")
        with trace_span("fleet.shard", shard=index, endpoint=endpoint.url,
                        attempt=-1, fallback=True):
            ticket = endpoint.submit(spec, kind=kind)
            payload = endpoint.result(ticket["job"], timeout=timeout)
        with self._lock:
            self._shards_local += 1
            self._shards_completed += 1
        return payload

    def close(self) -> None:
        """Release the local-fallback service's worker threads (no-op when
        degradation never engaged)."""
        with self._lock:
            service, self._local_service = self._local_service, None
        if service is not None:
            service.close()

    def _note_stragglers(self, plan, durations, total: float) -> None:
        if len(durations) < 2:
            return
        ordered = sorted(durations)
        median = ordered[len(ordered) // 2]
        with self._lock:
            for shard in plan.shards:
                d = durations[shard.index]
                if median > 0 and d > 2.0 * median:
                    self._stragglers.append(
                        {"shard": shard.index, "seconds": round(d, 3),
                         "median_seconds": round(median, 3),
                         "sweep_seconds": round(total, 3)})

    # -- observability -----------------------------------------------------

    def stats(self) -> dict:
        with self._lock:
            return {
                "endpoints": [
                    {"url": ep.url, "jobs": self._jobs_by_endpoint[i],
                     "state": self._breakers[i].state,
                     "dead": self._breakers[i].state != CLOSED}
                    for i, ep in enumerate(self.endpoints)],
                "shards_completed": self._shards_completed,
                "shards_skipped_warm": self._shards_skipped_warm,
                "shards_local": self._shards_local,
                "retries": self._retries,
                "redispatches": self._redispatches,
                "rejoins": self._rejoins,
                "stragglers": list(self._stragglers),
            }
