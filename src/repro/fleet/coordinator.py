"""Fan a :class:`~repro.fleet.ShardPlan` out to N endpoints, merge the results.

The coordinator is the horizontal layer over the sweep service: build a
plan, dispatch each shard to an endpoint (round-robin by shard index),
long-poll results, and :meth:`~repro.fleet.ShardPlan.merge_payloads` them
back into the exact payload one unsharded service run would have produced.

Endpoints are anything speaking the client protocol — ``http://...`` URLs
(wrapped in :class:`~repro.service.ServiceClient`), in-process
:class:`~repro.service.SweepService` instances (wrapped in
:class:`LocalEndpoint`), or any object with ``submit``/``result``/
``health``. Mixing kinds is fine; a laptop session can join a fleet of
remote services.

Failure policy: a *transport* failure (connection refused, job timeout)
triggers bounded exponential-backoff retry and — when a health probe says
the endpoint is gone — marks it dead and re-dispatches its shards to
survivors, so a killed fleet member slows the sweep down instead of
failing it. A *job* failure (the service computed and said "error") or a
4xx rejection is deterministic: every endpoint would fail the same way,
so it fails the sweep fast with :class:`FleetError` instead of burning
retries.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor

from repro.api.spec import spec_from_kind, spec_kind_of
from repro.fleet.shard import ShardPlan
from repro.service.client import ServiceClient, ServiceError, _as_spec_dict
from repro.store import ResultStore
from repro.store.fingerprint import fingerprint as _fingerprint

__all__ = ["FleetCoordinator", "FleetError", "LocalEndpoint"]


class FleetError(RuntimeError):
    """The fleet could not complete a sweep (all endpoints dead, retries
    exhausted, or a shard job failed deterministically)."""


class LocalEndpoint:
    """The endpoint protocol over an in-process
    :class:`~repro.service.SweepService` — lets the coordinator mix local
    sessions into a fleet (or run entirely in-process, as the tests and
    the benchmark harness do) with no HTTP in the loop."""

    def __init__(self, service, name: str = "local"):
        self.service = service
        self.url = f"local:{name}"

    def submit(self, spec, kind: str | None = None, busy_timeout: float = 60.0) -> dict:
        spec_dict = _as_spec_dict(spec)
        kind = kind or spec_kind_of(spec_dict)
        deadline = time.monotonic() + busy_timeout
        while True:
            try:
                job, coalesced = self.service.submit(kind, spec_dict)
            except (ValueError, KeyError, TypeError) as exc:
                # mirror the HTTP 400: a malformed spec is deterministic
                raise ServiceError(f"invalid {kind} spec: {exc}",
                                   status=400) from exc
            except RuntimeError as exc:
                busy_after = getattr(exc, "retry_after", None)
                if busy_after is None:  # closed, not busy: a dead endpoint
                    raise ServiceError(str(exc)) from exc
                if time.monotonic() + busy_after > deadline:
                    raise ServiceError(str(exc), status=429,
                                       retry_after=busy_after) from exc
                time.sleep(busy_after)
                continue
            return {"job": job.id, "coalesced": coalesced,
                    "fingerprint": job.fingerprint, "status": job.status}

    def result(self, job_id: str, timeout: float = 600.0) -> dict:
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ServiceError(f"job {job_id!r} did not finish in {timeout}s")
            job = self.service.job(job_id, wait=min(remaining, 10.0))
            if job is None:
                raise ServiceError(f"unknown job {job_id!r}", status=404)
            if job.status == "done":
                return job.result
            if job.status == "error":
                raise ServiceError(f"job {job_id!r} failed: {job.error}",
                                   payload=job.as_dict(include_result=False))

    def health(self) -> dict:
        return self.service.healthz()

    def stats(self) -> dict:
        return self.service.stats()


def _as_endpoint(endpoint, token: str | None):
    if isinstance(endpoint, str):
        return ServiceClient(endpoint, token=token)
    if hasattr(endpoint, "submit") and hasattr(endpoint, "result"):
        return endpoint
    # a bare SweepService (has submit but no result long-poll)
    if hasattr(endpoint, "job") and hasattr(endpoint, "healthz"):
        return LocalEndpoint(endpoint)
    raise TypeError(f"cannot use {type(endpoint).__name__} as a fleet endpoint")


def _is_deterministic(exc: ServiceError) -> bool:
    """True when retrying elsewhere cannot help: the job itself failed
    (the spec computes to an error on any endpoint) or the request was
    rejected as invalid/unauthorized. 429 never reaches here — the
    endpoint's ``submit`` retries it internally via ``Retry-After``."""
    if exc.payload is not None and exc.payload.get("status") == "error":
        return True
    return exc.status is not None and 400 <= exc.status < 500 and exc.status != 429


class FleetCoordinator:
    """See module docstring.

    ``shards=None`` defaults to one shard per endpoint. ``retries`` bounds
    *additional* attempts per shard beyond the first, with exponential
    backoff ``backoff * 2**attempt`` capped at ``max_backoff`` between
    attempts. ``timeout`` is per shard attempt (submit + long-poll).

    ``store`` (a :class:`~repro.store.ResultStore` or directory path) adds
    coordinator-side result caching: each shard's finished service payload
    is persisted keyed by ``(kind, sub-spec fingerprint)``, and before
    dispatching a shard the coordinator consults the store — a store-warm
    shard is served from disk without touching any endpoint (counted in
    ``stats()["shards_skipped_warm"]``). Payloads are merged the same way
    either path, so a warm run's output is byte-identical to a cold one.
    The endpoints' own stores are unrelated (and may not be shared
    filesystems); this cache lives with the coordinator.
    """

    def __init__(self, endpoints, shards: int | None = None,
                 timeout: float = 600.0, retries: int = 3,
                 backoff: float = 0.25, max_backoff: float = 4.0,
                 token: str | None = None, store=None):
        self.endpoints = [_as_endpoint(e, token) for e in endpoints]
        if not self.endpoints:
            raise ValueError("a fleet needs at least one endpoint")
        if shards is not None and shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.shards = shards
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.max_backoff = max_backoff
        self.store = ResultStore.coerce(store)
        self._lock = threading.Lock()
        self._dead: set[int] = set()
        self._jobs_by_endpoint = [0] * len(self.endpoints)
        self._retries = 0
        self._redispatches = 0
        self._stragglers: list[dict] = []
        self._shards_completed = 0
        self._shards_skipped_warm = 0

    # -- dispatch ----------------------------------------------------------

    def run(self, spec, kind: str | None = None) -> dict:
        """Shard ``spec`` (object / dict / JSON string / path, either
        kind), fan the shards out, and return the merged service-shape
        payload — byte-identical to an unsharded run of the parent."""
        spec_dict = _as_spec_dict(spec)
        kind = kind or spec_kind_of(spec_dict)
        plan = ShardPlan.build(spec_dict, self.shards or len(self.endpoints))
        started = time.monotonic()
        durations = [0.0] * len(plan.shards)

        def run_one(shard):
            t0 = time.monotonic()
            payload = self._cached_dispatch(plan.kind, shard.index, shard.spec)
            durations[shard.index] = time.monotonic() - t0
            return payload

        with ThreadPoolExecutor(
                max_workers=min(len(plan.shards), 4 * len(self.endpoints)),
                thread_name_prefix="fleet-shard") as pool:
            payloads = list(pool.map(run_one, plan.shards))
        self._note_stragglers(plan, durations, time.monotonic() - started)
        return plan.merge_payloads(payloads)

    def run_specs(self, specs, kind: str | None = None) -> list[dict]:
        """Dispatch one whole spec per job (no sharding) and return the
        service payloads in spec order.

        This is the fan-out primitive :class:`repro.search.SearchSession`
        uses for rung evaluation — a rung is an arbitrary candidate
        subset, not a cross product, so it ships as N independent
        single-point specs rather than a :class:`~repro.fleet.ShardPlan`.
        Each spec gets the full failure policy (retry, redispatch, warm
        store skip) of a plan shard.
        """
        spec_dicts = [_as_spec_dict(s) for s in specs]
        if not spec_dicts:
            return []
        kind = kind or spec_kind_of(spec_dicts[0])
        parsed = [spec_from_kind(kind, d) for d in spec_dicts]

        def run_one(i):
            return self._cached_dispatch(kind, i, parsed[i])

        with ThreadPoolExecutor(
                max_workers=min(len(parsed), 4 * len(self.endpoints)),
                thread_name_prefix="fleet-spec") as pool:
            return list(pool.map(run_one, range(len(parsed))))

    # -- store cache -------------------------------------------------------

    @staticmethod
    def _payload_key(kind: str, spec) -> str:
        return _fingerprint({"fleet_payload": {"kind": kind,
                                               "spec": spec.fingerprint()}})

    def _cached_dispatch(self, kind: str, index: int, spec) -> dict:
        """One unit of fleet work: serve it store-warm, or dispatch it and
        persist the payload. Spec fingerprints exclude presentation fields
        (``name``/``executor``), and the merge layers never read a
        payload's embedded name — so a renamed parent still hits."""
        if self.store is not None:
            payload = self.store.get_json("fleet-payload",
                                          self._payload_key(kind, spec))
            if payload is not None:
                with self._lock:
                    self._shards_skipped_warm += 1
                return payload
        payload = self._run_shard(kind, index, spec)
        if self.store is not None:
            self.store.put_json("fleet-payload",
                                self._payload_key(kind, spec), payload)
        return payload

    def _live_rotation(self, start: int):
        """Endpoint indices to try, preferred first, skipping the dead."""
        n = len(self.endpoints)
        with self._lock:
            order = [(start + i) % n for i in range(n)
                     if (start + i) % n not in self._dead]
        return order

    def _run_shard(self, kind: str, index: int, spec) -> dict:
        preferred = index % len(self.endpoints)
        delay = self.backoff
        last_error: ServiceError | None = None
        for attempt in range(self.retries + 1):
            rotation = self._live_rotation(preferred)
            if not rotation:
                raise FleetError(
                    f"shard {index}: all {len(self.endpoints)} fleet "
                    f"endpoints are dead (last error: {last_error})")
            for ep_idx in rotation:
                endpoint = self.endpoints[ep_idx]
                try:
                    ticket = endpoint.submit(spec, kind=kind)
                    payload = endpoint.result(ticket["job"],
                                              timeout=self.timeout)
                except ServiceError as exc:
                    if _is_deterministic(exc):
                        raise FleetError(
                            f"shard {index} ({spec.name}) failed "
                            f"on {endpoint.url}: {exc}") from exc
                    last_error = exc
                    self._note_failure(ep_idx)
                    continue  # try the next live endpoint, no backoff
                with self._lock:
                    self._jobs_by_endpoint[ep_idx] += 1
                    self._shards_completed += 1
                    if ep_idx != preferred:  # landed on a survivor
                        self._redispatches += 1
                return payload
            if attempt < self.retries:
                time.sleep(min(delay, self.max_backoff))
                delay *= 2
        raise FleetError(
            f"shard {index} ({spec.name}) exhausted "
            f"{self.retries + 1} attempts; last error: {last_error}")

    def _note_failure(self, ep_idx: int) -> None:
        """Book-keep a transport failure and health-probe the endpoint —
        unreachable means dead (its other shards re-route immediately);
        reachable means the *job* was slow/lost, leave it in rotation."""
        alive = True
        try:
            self.endpoints[ep_idx].health()
        except Exception:
            alive = False
        with self._lock:
            if not alive:
                self._dead.add(ep_idx)
            self._retries += 1

    def _note_stragglers(self, plan, durations, total: float) -> None:
        if len(durations) < 2:
            return
        ordered = sorted(durations)
        median = ordered[len(ordered) // 2]
        with self._lock:
            for shard in plan.shards:
                d = durations[shard.index]
                if median > 0 and d > 2.0 * median:
                    self._stragglers.append(
                        {"shard": shard.index, "seconds": round(d, 3),
                         "median_seconds": round(median, 3),
                         "sweep_seconds": round(total, 3)})

    # -- observability -----------------------------------------------------

    def stats(self) -> dict:
        with self._lock:
            return {
                "endpoints": [
                    {"url": ep.url, "jobs": self._jobs_by_endpoint[i],
                     "dead": i in self._dead}
                    for i, ep in enumerate(self.endpoints)],
                "shards_completed": self._shards_completed,
                "shards_skipped_warm": self._shards_skipped_warm,
                "retries": self._retries,
                "redispatches": self._redispatches,
                "stragglers": list(self._stragglers),
            }
