"""Deterministic sharding of sweep specs, and bit-identical merges.

A :class:`ShardPlan` splits one spec into K disjoint sub-specs that cover
the parent's cross-product exactly once, then reassembles shard results
into output **byte-identical** to the unsharded path. Both halves are pure
functions of the parent spec and K — no wall clock, no arrival order — so
a plan can be rebuilt anywhere (coordinator, CI, a retry after a crash)
and always names the same shards with the same derived fingerprints.

Which axis may be sharded is a correctness question, not a tuning knob:

* ``DesignSweepSpec``: every :class:`~repro.api.DesignPoint` in the cross
  product is evaluated independently (its own samples/rng), so *any* axis
  (designs / tiles / precisions) splits cleanly. The plan picks the
  longest axis (most parallelism), preferring designs, then tiles, on
  ties.
* ``RunSpec``: only the ``points`` (precision) axis. The sources axis is
  **not** shardable: a run samples every source's operands from one
  shared RNG stream consumed sequentially, so dropping a source from a
  sub-spec would shift every later source's operands and change the
  numbers. Precision points, by contrast, all score the same operands.

Merged output equals unsharded output byte-for-byte because (a) each
result point depends only on its own sub-spec slice, (b) the plan records
every shard's parent point indices so the merge restores parent order
exactly, and (c) the result dicts round-trip JSON bit-exactly (asserted
by the store/service test suites this builds on).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.api import (
    DesignReport,
    DesignSweepSpec,
    RunSpec,
    render_design_reports,
    render_sweep,
)
from repro.analysis.sweeps import PrecisionSweep
from repro.api.session import sweep_points_from_dicts, sweep_points_to_dicts
from repro.api.spec import spec_from_kind, spec_kind_of
from repro.chaos.errors import FatalError
from repro.store.fingerprint import fingerprint as _fingerprint

__all__ = ["Shard", "ShardMergeError", "ShardPlan"]


class ShardMergeError(FatalError, ValueError):
    """A shard returned results that don't match its slice of the plan.

    Deterministic — the same shard would return the same wrong shape again —
    so it is :class:`~repro.chaos.errors.FatalError` (retry loops must not
    re-dispatch on it) while staying a ``ValueError`` for older callers.
    """


def _balanced_spans(n: int, k: int) -> list[tuple[int, int]]:
    """K contiguous [start, stop) spans covering range(n), sizes within 1."""
    base, extra = divmod(n, k)
    spans, start = [], 0
    for i in range(k):
        stop = start + base + (1 if i < extra else 0)
        spans.append((start, stop))
        start = stop
    return spans


@dataclass(frozen=True)
class Shard:
    """One sub-spec of a plan.

    ``fingerprint`` identifies the shard *slot* (derived from the parent
    fingerprint + position, stable across rebuilds); the sub-spec's own
    ``spec.fingerprint()`` still keys results and coalescing on the
    service side, so a shard shares cache entries with any direct run of
    the same sub-grid. ``point_indices`` are the parent-axis positions
    this shard covers (``RunSpec.points`` indices for sweeps, flat
    ``DesignSweepSpec.points()`` indices for design sweeps), in the
    shard's local result order.
    """

    index: int
    fingerprint: str
    spec: RunSpec | DesignSweepSpec
    point_indices: tuple[int, ...]

    def to_dict(self) -> dict:
        return {"index": self.index, "fingerprint": self.fingerprint,
                "spec": self.spec.to_dict(),
                "point_indices": list(self.point_indices)}


_AXIS_NONE = "none"


@dataclass(frozen=True)
class ShardPlan:
    """See module docstring. Build with :meth:`build`, merge with
    :meth:`merge_sweeps` / :meth:`merge_reports` / :meth:`merge_payloads`."""

    kind: str  # "sweep" | "design-sweep" (service wire names)
    parent: RunSpec | DesignSweepSpec
    axis: str  # "points" | "designs" | "tiles" | "precisions" | "none"
    requested_shards: int
    shards: tuple[Shard, ...]

    @property
    def parent_fingerprint(self) -> str:
        return self.parent.fingerprint()

    # -- construction ------------------------------------------------------

    @classmethod
    def build(cls, spec, shards: int) -> "ShardPlan":
        """Split ``spec`` (object or dict, either kind) into at most
        ``shards`` sub-specs. K is clamped to the sharded axis length, so
        every shard is non-empty and a 1-long grid yields a 1-shard plan.
        """
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        kind = spec_kind_of(spec)
        if kind == "search":
            # a search is sequential across rungs and its rungs are
            # arbitrary candidate subsets, not a cross product — the
            # coordinator fans rungs out via run_specs instead
            raise ValueError(
                "search specs do not shard; run them through "
                "repro.search.SearchSession(fleet=...) (runner: "
                "--search spec.json --fleet URLS)")
        spec = spec_from_kind(kind, spec)
        if kind == "sweep":
            axis, subsets = cls._split_run_spec(spec, shards)
        else:
            axis, subsets = cls._split_design_spec(spec, shards)
        parent_fp = spec.fingerprint()
        k_eff = len(subsets)
        built = tuple(
            Shard(index=i,
                  fingerprint=_fingerprint({"fleet_shard": parent_fp,
                                            "index": i, "of": k_eff}),
                  spec=sub, point_indices=tuple(indices))
            for i, (sub, indices) in enumerate(subsets))
        return cls(kind=kind, parent=spec, axis=axis,
                   requested_shards=shards, shards=built)

    @staticmethod
    def _split_run_spec(spec: RunSpec, shards: int):
        n = len(spec.points)
        if n == 0:
            raise ValueError("cannot shard a RunSpec with no points")
        spans = _balanced_spans(n, min(shards, n))
        if len(spans) == 1:
            return _AXIS_NONE, [(spec, range(n))]
        subsets = []
        for i, (start, stop) in enumerate(spans):
            sub = replace(spec, name=f"{spec.name}#s{i}of{len(spans)}",
                          points=spec.points[start:stop])
            subsets.append((sub, range(start, stop)))
        return "points", subsets

    @staticmethod
    def _split_design_spec(spec: DesignSweepSpec, shards: int):
        nd, nt = len(spec.designs), len(spec.tiles)
        np_ = len(spec.precisions) or 1  # precisions=() runs as one None point
        if nd == 0:
            raise ValueError("cannot shard a DesignSweepSpec with no designs")
        # longest axis wins (ties: designs, then tiles — cheaper sub-specs)
        axis, length = max((("designs", nd), ("tiles", nt),
                            ("precisions", len(spec.precisions))),
                           key=lambda kv: kv[1])
        if length <= 1:
            return _AXIS_NONE, [(spec, range(nd * nt * np_))]
        spans = _balanced_spans(length, min(shards, length))
        if len(spans) == 1:
            return _AXIS_NONE, [(spec, range(nd * nt * np_))]
        subsets = []
        for i, (start, stop) in enumerate(spans):
            name = f"{spec.name}#s{i}of{len(spans)}"
            # parent points() order is designs-outer / tiles / precisions-inner
            if axis == "designs":
                sub = replace(spec, name=name, designs=spec.designs[start:stop])
                indices = [d * nt * np_ + t * np_ + p
                           for d in range(start, stop)
                           for t in range(nt) for p in range(np_)]
            elif axis == "tiles":
                sub = replace(spec, name=name, tiles=spec.tiles[start:stop])
                indices = [d * nt * np_ + t * np_ + p
                           for d in range(nd)
                           for t in range(start, stop) for p in range(np_)]
            else:
                sub = replace(spec, name=name,
                              precisions=spec.precisions[start:stop])
                indices = [d * nt * np_ + t * np_ + p
                           for d in range(nd) for t in range(nt)
                           for p in range(start, stop)]
            subsets.append((sub, indices))
        return axis, subsets

    # -- JSON round trip (what the coordinator logs / a retry reloads) -----

    def to_dict(self) -> dict:
        return {"kind": self.kind, "axis": self.axis,
                "requested_shards": self.requested_shards,
                "parent_fingerprint": self.parent_fingerprint,
                "parent": self.parent.to_dict(),
                "shards": [s.to_dict() for s in self.shards]}

    @classmethod
    def from_dict(cls, d: dict) -> "ShardPlan":
        kind = d["kind"]
        shards = tuple(
            Shard(index=s["index"], fingerprint=s["fingerprint"],
                  spec=spec_from_kind(kind, s["spec"]),
                  point_indices=tuple(s["point_indices"]))
            for s in d["shards"])
        return cls(kind=kind, parent=spec_from_kind(kind, d["parent"]),
                   axis=d["axis"], requested_shards=d["requested_shards"],
                   shards=shards)

    # -- merges (plan order, never arrival order) --------------------------

    def _owners(self) -> dict[int, tuple[int, int]]:
        """parent point index -> (shard index, local position on the axis)."""
        owners: dict[int, tuple[int, int]] = {}
        for shard in self.shards:
            for local, pi in enumerate(shard.point_indices):
                owners[pi] = (shard.index, local)
        return owners

    def merge_sweeps(self, shard_points: list) -> "PrecisionSweep":
        """Reassemble per-shard sweep points (each a ``PrecisionSweep`` or
        its ``points`` list, indexed by shard) into the parent's sweep,
        point-for-point identical to an unsharded run."""
        if self.kind != "sweep":
            raise ValueError(f"merge_sweeps on a {self.kind!r} plan")
        rows = [list(getattr(s, "points", s)) for s in shard_points]
        merged = self._merge_sweep_rows(rows)
        return PrecisionSweep(points=merged)

    def _merge_sweep_rows(self, rows: list[list]) -> list:
        """Interleave shard result rows back into parent order.

        Shard results are sources-outer / shard-points-inner (the session's
        order over the *sub*-spec); the parent wants sources-outer /
        parent-points-inner, so each source block pulls its points from the
        owning shard's matching source block.
        """
        n_sources = len(self.parent.sources)
        n_points = len(self.parent.points)
        for shard in self.shards:
            expect = n_sources * len(shard.point_indices)
            got = len(rows[shard.index])
            if got != expect:
                raise ShardMergeError(
                    f"shard {shard.index} returned {got} sweep points, "
                    f"expected {expect}")
        owners = self._owners()
        merged = []
        for si in range(n_sources):
            for pi in range(n_points):
                shard_idx, local = owners[pi]
                width = len(self.shards[shard_idx].point_indices)
                merged.append(rows[shard_idx][si * width + local])
        return merged

    def merge_reports(self, shard_reports: list) -> list:
        """Reassemble per-shard ``DesignReport`` lists (indexed by shard)
        into the parent's ``points()`` order."""
        if self.kind != "design-sweep":
            raise ValueError(f"merge_reports on a {self.kind!r} plan")
        total = sum(len(s.point_indices) for s in self.shards)
        merged: list = [None] * total
        for shard in self.shards:
            reports = list(shard_reports[shard.index])
            if len(reports) != len(shard.point_indices):
                raise ShardMergeError(
                    f"shard {shard.index} returned {len(reports)} reports, "
                    f"expected {len(shard.point_indices)}")
            for local, pi in enumerate(shard.point_indices):
                merged[pi] = reports[local]
        return merged

    def merge_payloads(self, payloads: list[dict]) -> dict:
        """Merge service result payloads (one per shard, shard order) into
        the payload an unsharded service run of the parent would return:
        ``{"kind", "name", "fingerprint", "points"|"reports", "rendered"}``
        with the parent's name/fingerprint and a freshly rendered table —
        byte-identical to the single-service path."""
        base = {"kind": self.kind, "name": self.parent.name,
                "fingerprint": self.parent_fingerprint}
        if self.kind == "sweep":
            rows = [sweep_points_from_dicts(p["points"]) for p in payloads]
            merged = self._merge_sweep_rows(rows)
            sweep = PrecisionSweep(points=merged)
            return {**base, "points": sweep_points_to_dicts(merged),
                    "rendered": render_sweep(sweep, title=self.parent.name)}
        reports = self.merge_reports(
            [[DesignReport.from_dict(r) for r in p["reports"]]
             for p in payloads])
        return {**base, "reports": [r.to_dict() for r in reports],
                "rendered": render_design_reports(reports,
                                                  title=self.parent.name)}
