"""Nibble-iteration schedules (paper §2.1–2.2).

A higher-precision multiplication on the 5b×5b IPU runs ``Ka * Kb`` nibble
iterations, one per (i, j) nibble-index pair. The accumulator shift of the
(i, j) result in INT mode is ``4*((Ka-i-1) + (Kb-j-1))`` relative to the most
significant iteration; the schedule captures that bookkeeping once so the
datapath, cycle model and tests all agree on it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.nibble.decompose import NIBBLE_BITS, fp_nibble_count, int_nibble_count
from repro.fp.formats import FPFormat

__all__ = ["NibbleIteration", "int_schedule", "fp_schedule", "iteration_count"]


@dataclass(frozen=True)
class NibbleIteration:
    """One (i, j) nibble pass.

    ``significance`` is the weight exponent of this iteration's products
    relative to the (0,0) iteration: ``4*(i + j)``. ``acc_right_shift`` is
    the paper's accumulator shift ``4*((Ka-i-1) + (Kb-j-1))``.
    """

    i: int
    j: int
    ka: int
    kb: int

    @property
    def significance(self) -> int:
        return NIBBLE_BITS * (self.i + self.j)

    @property
    def acc_right_shift(self) -> int:
        return NIBBLE_BITS * ((self.ka - self.i - 1) + (self.kb - self.j - 1))


def int_schedule(a_bits: int, b_bits: int) -> list[NibbleIteration]:
    """Iterations for an INTa x INTb multiplication (e.g. 8x12 -> 6 passes)."""
    ka, kb = int_nibble_count(a_bits), int_nibble_count(b_bits)
    return [NibbleIteration(i, j, ka, kb) for i in range(ka) for j in range(kb)]


def fp_schedule(fmt_a: FPFormat, fmt_b: FPFormat | None = None) -> list[NibbleIteration]:
    """Iterations for an FP x FP product (FP16: 9 passes, BF16: 4 passes)."""
    fb = fmt_b or fmt_a
    ka, kb = fp_nibble_count(fmt_a), fp_nibble_count(fb)
    return [NibbleIteration(i, j, ka, kb) for i in range(ka) for j in range(kb)]


def iteration_count(a_bits: int, b_bits: int) -> int:
    """Total nibble iterations = product of per-operand nibble counts."""
    return int_nibble_count(a_bits) * int_nibble_count(b_bits)
