"""Temporal nibble decomposition of INT and FP operands (paper §2).

The IPU's multipliers are 5-bit signed. Wider integers are split into 4-bit
nibbles (unsigned except the most significant one), and FP16 signed
magnitudes are split into the three 5-bit operands the paper specifies::

    M[11:0]  ->  N2 = {M11..M7},  N1 = {0, M6..M3},  N0 = {0, M2..M0, 0}

i.e. for an 11-bit magnitude ``m``: ``n2 = m >> 7``, ``n1 = (m >> 3) & 0xF``,
``n0 = (m & 0x7) << 1`` so that ``2*m = n2*2**8 + n1*2**4 + n0``. The
trailing zero injected into N0 is the implicit left shift that preserves one
extra bit through the right-shift-and-truncate alignment path.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fp.formats import FPFormat
from repro.utils.bits import mask

__all__ = [
    "NIBBLE_BITS",
    "OPERAND_MIN",
    "OPERAND_MAX",
    "int_nibble_count",
    "int_to_nibbles",
    "nibbles_to_int",
    "fp_nibble_count",
    "fp_magnitude_to_nibbles",
    "fp_nibbles_to_magnitude",
    "fp_nibble_weight_exp",
    "fp_magnitude_nibbles_vec",
    "FPDecomposition",
]

NIBBLE_BITS = 4
# 5-bit signed multiplier operand range (the paper's 5b x 5b multipliers).
OPERAND_MIN, OPERAND_MAX = -16, 15


def int_nibble_count(bits: int) -> int:
    """Number of nibble operands for a ``bits``-wide integer (K in the paper)."""
    if bits < 1:
        raise ValueError(f"integer width must be >= 1, got {bits}")
    return -(-bits // NIBBLE_BITS)


def int_to_nibbles(value: int, bits: int, signed: bool = True) -> list[int]:
    """Split an integer into K nibble operands, least significant first.

    All nibbles are unsigned 4-bit digits except the most significant one,
    which carries the sign when ``signed``; every returned operand fits the
    5-bit signed multiplier input.
    """
    k = int_nibble_count(bits)
    if signed:
        lo, hi = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
    else:
        lo, hi = 0, (1 << bits) - 1
    if not lo <= value <= hi:
        raise OverflowError(f"{value} out of range for {'' if signed else 'u'}int{bits}")
    pattern = value & mask(bits)
    nibbles = [(pattern >> (NIBBLE_BITS * i)) & 0xF for i in range(k)]
    if signed:
        top_bits = bits - NIBBLE_BITS * (k - 1)
        top = nibbles[-1]
        if top & (1 << (top_bits - 1)):
            top -= 1 << top_bits
        nibbles[-1] = top
    return nibbles


def nibbles_to_int(nibbles: list[int]) -> int:
    """Inverse of :func:`int_to_nibbles` (works for FP nibble triples too)."""
    return sum(n << (NIBBLE_BITS * i) for i, n in enumerate(nibbles))


def fp_nibble_count(fmt: FPFormat) -> int:
    """Nibble operands for the signed magnitude of ``fmt``.

    FP16/TF32 magnitudes are 11 bits -> 3 nibbles (with the left-shift trick);
    BFloat16 magnitudes are 8 bits -> 2 nibbles (Appendix B: only 4 nibble
    iterations per product).
    """
    return -(-fmt.magnitude_bits // NIBBLE_BITS)


@dataclass(frozen=True)
class FPDecomposition:
    """Signed nibble operands of one FP value plus their significance.

    ``operands[k]`` is the signed 5-bit multiplier input; its weight within
    the magnitude is ``2**weight_exp(k)`` relative to ``2**unbiased_exp``.
    """

    operands: tuple[int, ...]
    unbiased_exp: int

    def magnitude_value(self, fmt: FPFormat) -> float:
        return sum(
            o * 2.0 ** fp_nibble_weight_exp(fmt, k) for k, o in enumerate(self.operands)
        )


def fp_nibble_weight_exp(fmt: FPFormat, k: int) -> int:
    """Weight exponent of nibble ``k`` relative to the number's exponent.

    For FP16 (11-bit magnitude, implicit left shift by 1):
    magnitude = sum_k n_k * 2**(4k - 12) * 2  = sum_k n_k * 2**(4k - 11).
    Generalized: ``4k - (4*K - 1)`` where K = nibble count... for FP16
    K=3 -> 4k - 11; for BF16 (8-bit magnitude, no shift) -> 4k - 7.
    """
    k_total = fp_nibble_count(fmt)
    if fmt.magnitude_bits == NIBBLE_BITS * k_total:
        # magnitude fills nibbles exactly (BF16: 8 bits, 2 nibbles): no shift
        return NIBBLE_BITS * k - fmt.man_bits
    # magnitude has a spare low bit -> implicit left shift by 1 (FP16/TF32)
    return NIBBLE_BITS * k - fmt.man_bits - 1


def fp_magnitude_to_nibbles(fmt: FPFormat, magnitude: int) -> tuple[int, ...]:
    """Split an unsigned magnitude into unsigned nibble digits (LSB first).

    Applies the implicit left shift when the magnitude does not fill its
    nibbles exactly (FP16: ``n0`` gets a trailing zero).
    """
    if magnitude < 0 or magnitude >> fmt.magnitude_bits:
        raise OverflowError(f"magnitude {magnitude} out of range for {fmt.name}")
    k_total = fp_nibble_count(fmt)
    shifted = magnitude
    if fmt.magnitude_bits != NIBBLE_BITS * k_total:
        shifted = magnitude << 1
    return tuple((shifted >> (NIBBLE_BITS * i)) & 0xF for i in range(k_total))


def fp_nibbles_to_magnitude(fmt: FPFormat, nibbles: tuple[int, ...]) -> int:
    value = nibbles_to_int(list(nibbles))
    k_total = fp_nibble_count(fmt)
    if fmt.magnitude_bits != NIBBLE_BITS * k_total:
        if value & 1:
            raise ValueError("implicit-shift LSB must be zero")
        value >>= 1
    return value


def fp_magnitude_nibbles_vec(fmt: FPFormat, magnitude: np.ndarray) -> np.ndarray:
    """Vectorized nibble split: returns array shaped ``(*mag.shape, K)``."""
    k_total = fp_nibble_count(fmt)
    mag = np.asarray(magnitude, dtype=np.int64)
    if fmt.magnitude_bits != NIBBLE_BITS * k_total:
        mag = mag << 1
    out = np.empty(mag.shape + (k_total,), dtype=np.int64)
    for i in range(k_total):
        out[..., i] = (mag >> (NIBBLE_BITS * i)) & 0xF
    return out
