"""Nibble decomposition of INT and FP operands for temporal execution."""

from repro.nibble.decompose import (
    NIBBLE_BITS,
    OPERAND_MAX,
    OPERAND_MIN,
    FPDecomposition,
    fp_magnitude_nibbles_vec,
    fp_magnitude_to_nibbles,
    fp_nibble_count,
    fp_nibble_weight_exp,
    fp_nibbles_to_magnitude,
    int_nibble_count,
    int_to_nibbles,
    nibbles_to_int,
)
from repro.nibble.schedule import NibbleIteration, fp_schedule, int_schedule, iteration_count

__all__ = [
    "NIBBLE_BITS", "OPERAND_MAX", "OPERAND_MIN", "FPDecomposition",
    "fp_magnitude_nibbles_vec", "fp_magnitude_to_nibbles", "fp_nibble_count",
    "fp_nibble_weight_exp", "fp_nibbles_to_magnitude", "int_nibble_count",
    "int_to_nibbles", "nibbles_to_int",
    "NibbleIteration", "fp_schedule", "int_schedule", "iteration_count",
]
