"""The successive-halving search driver and its resumable result records.

A :class:`SearchSession` walks a :class:`~repro.search.halving.SearchSpec`
rung by rung: evaluate the rung's surviving candidates at its fidelity
(through a shared :class:`~repro.api.DesignSession`, or a
:class:`~repro.fleet.FleetCoordinator` for a fleet-backed search), select
survivors with :func:`~repro.search.halving.select_survivors`, and record
the rung. Every completed rung persists in the session's
:class:`~repro.store.ResultStore` (kind ``"search-rung"``, keyed by the
spec fingerprint + rung index), and every design evaluation persists
through the design session's own ``"design-report"`` entries — so a
killed search re-run with the same store resumes at the first incomplete
rung and re-computes only the missing design points.

:class:`SearchResult` (spec + candidates + rung records) is pure data:
its ``to_dict()`` is a deterministic function of the spec and the store
contents, which is what lets the CI byte-diff a resumed run, a fresh run,
and a ``POST /v1/search`` payload against each other.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass

from repro.api.design import DesignReport, DesignSession
from repro.api.spec import DesignSweepSpec
from repro.chaos.errors import DeadlineExceeded
from repro.obs.metrics import REGISTRY
from repro.obs.trace import trace_span
from repro.search.halving import RungSpec, SearchSpec, keep_count, select_survivors
from repro.search.space import Candidate
from repro.store import ResultStore
from repro.store.fingerprint import fingerprint as _result_key
from repro.utils.table import render_table

__all__ = ["RungRecord", "SearchResult", "SearchSession", "render_search"]

# The per-candidate summary metrics recorded for design-level rungs: enough
# to render the result and re-check frontier membership without reloading
# reports. All are DesignReport.metric strings.
SUMMARY_METRICS = ("median_contaminated_bits", "tops_per_mm2@fp16",
                   "tops_per_w@fp16", "area_mm2")


@dataclass(frozen=True)
class RungRecord:
    """One completed rung: who ran, what they scored, who survived.

    ``candidates``/``survivors`` are indices into the search's candidate
    tuple; ``scores[i]`` holds candidate ``candidates[i]``'s objective-axis
    values (one entry for metric objectives, two for ``pareto:``, the
    top-1 accuracy for model-level rungs); ``metrics[i]`` is its
    :data:`SUMMARY_METRICS` summary dict.
    """

    index: int
    candidates: tuple[int, ...]
    scores: tuple[tuple[float, ...], ...]
    survivors: tuple[int, ...]
    metrics: tuple[dict, ...]
    top1: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(self, "candidates", tuple(int(i) for i in self.candidates))
        object.__setattr__(self, "scores", tuple(
            tuple(float(s) for s in row) for row in self.scores))
        object.__setattr__(self, "survivors", tuple(int(i) for i in self.survivors))
        object.__setattr__(self, "metrics", tuple(dict(m) for m in self.metrics))

    def to_dict(self) -> dict:
        return {"index": self.index,
                "candidates": list(self.candidates),
                "scores": [list(row) for row in self.scores],
                "survivors": list(self.survivors),
                "metrics": [dict(m) for m in self.metrics],
                "top1": self.top1}

    @classmethod
    def from_dict(cls, d: dict) -> "RungRecord":
        return cls(index=d["index"], candidates=d["candidates"],
                   scores=d["scores"], survivors=d["survivors"],
                   metrics=d["metrics"], top1=d.get("top1", False))


@dataclass(frozen=True)
class SearchResult:
    """The full search outcome: ordered rung records over one candidate
    tuple. ``winners()`` are the last rung's survivors."""

    spec: SearchSpec
    candidates: tuple[Candidate, ...]
    rungs: tuple[RungRecord, ...]

    def winners(self) -> tuple[Candidate, ...]:
        if not self.rungs:
            return ()
        return tuple(self.candidates[i] for i in self.rungs[-1].survivors)

    def to_dict(self) -> dict:
        return {"spec": self.spec.to_dict(),
                "candidates": [c.to_dict() for c in self.candidates],
                "rungs": [r.to_dict() for r in self.rungs],
                "winners": [int(i) for i in self.rungs[-1].survivors] if self.rungs else []}

    @classmethod
    def from_dict(cls, d: dict) -> "SearchResult":
        return cls(spec=SearchSpec.from_dict(d["spec"]),
                   candidates=tuple(Candidate.from_dict(c)
                                    for c in d["candidates"]),
                   rungs=tuple(RungRecord.from_dict(r) for r in d["rungs"]))


def _fmt(value: float) -> str:
    if value is None or not math.isfinite(value):
        return "-"
    return f"{value:.4g}"


def render_search(result: SearchResult) -> str:
    """The search as text tables: one row per (rung, candidate), survivors
    starred, then the winners. Deterministic — the CI byte-diffs it."""
    spec = result.spec
    headers = ["rung", "candidate", "design", "tile", "score",
               "err bits", "TOPS/mm2", "TOPS/W", ""]
    rows = []
    for record in result.rungs:
        kept = set(record.survivors)
        for ci, score, metrics in zip(record.candidates, record.scores,
                                      record.metrics):
            c = result.candidates[ci]
            if record.top1:
                err = metrics.get("fp32_top1")
                mm2 = pw = None
            else:
                err = metrics.get("median_contaminated_bits")
                mm2 = metrics.get("tops_per_mm2@fp16")
                pw = metrics.get("tops_per_w@fp16")
            rows.append([
                f"{record.index}{' (top1)' if record.top1 else ''}",
                ci, c.design, c.tile,
                " ".join(_fmt(s) for s in score),
                _fmt(err), _fmt(mm2), _fmt(pw),
                "kept" if ci in kept else "",
            ])
    table = render_table(headers, rows, title=f"search: {spec.name}")
    winners = ", ".join(f"#{i} {result.candidates[i].design}"
                        for i in (result.rungs[-1].survivors if result.rungs else ()))
    lines = [table,
             f"objective: {spec.objective} | strategy: {spec.strategy} | "
             f"eta: {spec.eta} | rungs: {len(result.rungs)}",
             f"winners: {winners or 'none'}"]
    return "\n".join(lines)


@dataclass
class SearchSessionStats:
    rungs_total: int = 0
    rungs_resumed: int = 0
    evaluated: int = 0  # candidate evaluations attempted (non-resumed rungs)
    computed: int = 0   # of those, computed fresh
    cached: int = 0     # of those, served from the store

    def to_dict(self) -> dict:
        return {"rungs_total": self.rungs_total,
                "rungs_resumed": self.rungs_resumed,
                "evaluated": self.evaluated,
                "computed": self.computed,
                "cached": self.cached}


class SearchSession:
    """See module docstring.

    Parameters
    ----------
    design:
        The :class:`~repro.api.DesignSession` evaluating design-level
        rungs. ``None`` builds one from ``backend``/``workers``/``store``
        (owned: closed with this session).
    store:
        :class:`~repro.store.ResultStore` (or path) persisting rung
        records and, via the owned design session, the per-point reports.
        Without a store the search still runs — it just can't resume.
    fleet:
        A :class:`~repro.fleet.FleetCoordinator`; when set, design-level
        rungs dispatch one single-point design sweep per candidate through
        the fleet instead of the local design session. Results are
        identical either way (the sub-specs carry the rung's fidelity).
    """

    def __init__(self, design: DesignSession | None = None, store=None,
                 backend=None, workers: int | None = None, fleet=None):
        self.store = ResultStore.coerce(store)
        if design is None:
            self.design = DesignSession(workers=workers, backend=backend,
                                        store=self.store)
            self._owns_design = True
        else:
            self.design = design
            self._owns_design = False
            if self.store is None:
                self.store = design.store
        self.fleet = fleet
        self.stats = SearchSessionStats()
        REGISTRY.register_object(
            self, lambda session: session.stats.to_dict(),
            prefix="repro_search",
            labels={"instance": REGISTRY.next_instance("search")},
            counters=frozenset({"rungs_total", "rungs_resumed", "evaluated",
                                "computed", "cached"}))

    def close(self) -> None:
        if self._owns_design:
            self.design.close()

    def __enter__(self) -> "SearchSession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- rung persistence --------------------------------------------------

    @staticmethod
    def _rung_key(spec: SearchSpec, index: int) -> str:
        return _result_key({"search_rung": spec.fingerprint(), "rung": index})

    def _load_rung(self, spec: SearchSpec, index: int, expected: list[int],
                   top1: bool) -> RungRecord | None:
        if self.store is None:
            return None
        payload = self.store.get_json("search-rung", self._rung_key(spec, index))
        if payload is None:
            return None
        record = RungRecord.from_dict(payload)
        # a record that doesn't describe exactly this rung's roster is
        # stale (e.g. an earlier rung's store entry was lost): recompute
        if (record.candidates != tuple(expected) or record.top1 != top1
                or len(record.scores) != len(expected)
                or len(record.metrics) != len(expected)
                or not set(record.survivors) <= set(expected)):
            return None
        return record

    def _save_rung(self, spec: SearchSpec, record: RungRecord) -> None:
        if self.store is not None:
            self.store.put_json("search-rung",
                                self._rung_key(spec, record.index),
                                record.to_dict())

    # -- rung evaluation ---------------------------------------------------

    @staticmethod
    def _check_deadline(deadline: float | None, what: str) -> float | None:
        """Remaining seconds before ``deadline`` (None = unbounded); raises
        :class:`DeadlineExceeded` when the budget is already spent."""
        if deadline is None:
            return None
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            raise DeadlineExceeded(f"rung deadline elapsed before {what}")
        return remaining

    def _evaluate_rung(self, spec: SearchSpec, ri: int, rung: RungSpec,
                       active: list[int],
                       candidates: tuple[Candidate, ...],
                       deadline: float | None = None) -> list[DesignReport]:
        accuracy = rung.accuracy_spec()
        points = [candidates[i].point(spec.op_precisions, rung.samples, spec.rng)
                  for i in active]
        self.stats.evaluated += len(points)
        if self.fleet is not None:
            subs = [DesignSweepSpec(
                name=f"{spec.name}-r{ri}-c{i}", designs=(candidates[i].design,),
                tiles=(candidates[i].tile,),
                precisions=(() if candidates[i].precision is None
                            else (candidates[i].precision,)),
                op_precisions=spec.op_precisions, samples=rung.samples,
                rng=spec.rng, accuracy=accuracy) for i in active]
            warm_before = self.fleet.stats().get("shards_skipped_warm", 0)
            remaining = self._check_deadline(deadline, f"rung {ri} dispatch")
            payloads = self.fleet.run_specs(subs, "design-sweep",
                                            timeout=remaining)
            warm = self.fleet.stats().get("shards_skipped_warm", 0) - warm_before
            self.stats.cached += warm
            self.stats.computed += len(points) - warm
            return [DesignReport.from_dict(p["reports"][0]) for p in payloads]
        hits0 = self.design.stats.hits.get("report", 0)
        if deadline is None:
            reports = self.design.sweep(points, accuracy=accuracy)
        else:
            # point at a time so a hung rung fails between candidates; each
            # finished report persists, so the re-run only fills the gaps
            reports = []
            for i, point in zip(active, points):
                self._check_deadline(deadline, f"rung {ri} candidate {i}")
                reports.extend(self.design.sweep([point], accuracy=accuracy))
        hits = self.design.stats.hits.get("report", 0) - hits0
        self.stats.cached += hits
        self.stats.computed += len(points) - hits
        return reports

    def _top1_scores(self, spec: SearchSpec, rung: RungSpec,
                     active: list[int],
                     candidates: tuple[Candidate, ...],
                     deadline: float | None = None) -> list[dict]:
        """Model-level scores: top-1 accuracy of the rung's trained model
        at each candidate's resolved precision width (store-cached per
        (style, n_eval, width) — many candidates share a width)."""
        out = []
        self.stats.evaluated += len(active)
        for i in active:
            point = candidates[i].point(spec.op_precisions, rung.samples,
                                        spec.rng)
            precision = point.resolved_precision()
            if precision is None:  # INT-only design: no FP16 model serve
                self.stats.computed += 1
                out.append({"top1_accuracy": math.nan, "fp32_top1": math.nan})
                continue
            width = precision.adder_width
            key = _result_key({"search_top1": {
                "style": rung.top1_style, "n_eval": rung.top1_n_eval,
                "width": width}})
            stored = None if self.store is None else \
                self.store.get_json("search-top1", key)
            if stored is not None:
                self.stats.cached += 1
                out.append(stored)
                continue
            self._check_deadline(deadline, f"top1 candidate {i}")
            self.stats.computed += 1
            from repro.analysis._model_cache import trained_model
            from repro.analysis.accuracy import accuracy_vs_precision

            model, dataset = trained_model(rung.top1_style)
            images = dataset.images[-rung.top1_n_eval:]
            labels = dataset.labels[-rung.top1_n_eval:]
            acc_points = accuracy_vs_precision(
                model, images, labels, (width,),
                session=self.design.emulation)
            payload = {"top1_accuracy": acc_points[1].accuracy,
                       "fp32_top1": acc_points[0].accuracy}
            if self.store is not None:
                self.store.put_json("search-top1", key, payload)
            out.append(payload)
        return out

    # -- the front door ----------------------------------------------------

    def run(self, spec: SearchSpec,
            rung_deadline_seconds: float | None = None) -> SearchResult:
        """Run (or resume) the whole halving ladder; see module docstring.

        ``rung_deadline_seconds`` bounds each *non-resumed* rung's wall
        clock: the budget is checked between candidate evaluations (and
        passed through as the fleet dispatch timeout), so a hung rung raises
        :class:`~repro.chaos.errors.DeadlineExceeded` fast instead of
        stalling the ladder. Resumed rungs and store-served evaluations are
        exempt — a warm replay always finishes — and every evaluation that
        completed before the deadline persists, so a re-run picks up where
        the timed-out one stopped.
        """
        spec = SearchSpec.from_dict(spec)
        candidates = spec.candidates()
        with trace_span("search.run", spec=spec.name,
                        candidates=len(candidates), rungs=len(spec.rungs)):
            return self._run_rungs(spec, candidates, rung_deadline_seconds)

    def _run_rungs(self, spec: SearchSpec, candidates,
                   rung_deadline_seconds: float | None) -> SearchResult:
        active = list(range(len(candidates)))
        records: list[RungRecord] = []
        for ri, rung in enumerate(spec.rungs):
            self.stats.rungs_total += 1
            deadline = (None if rung_deadline_seconds is None
                        else time.monotonic() + rung_deadline_seconds)
            with trace_span("search.rung", rung=ri, candidates=len(active),
                            top1=rung.top1) as sp:
                record = self._load_rung(spec, ri, active, rung.top1)
                if record is not None:
                    self.stats.rungs_resumed += 1
                    sp.set(resumed=True)
                elif rung.top1:
                    scored = self._top1_scores(spec, rung, active, candidates,
                                               deadline=deadline)
                    scores = [(s["top1_accuracy"],) for s in scored]
                    keep = keep_count(len(active), spec.eta)
                    ranked = sorted(
                        range(len(active)),
                        key=lambda j: ((-scores[j][0]
                                        if math.isfinite(scores[j][0])
                                        else math.inf), j))
                    survivors = [active[j] for j in sorted(ranked[:keep])]
                    record = RungRecord(index=ri, candidates=tuple(active),
                                        scores=tuple(scores),
                                        survivors=tuple(survivors),
                                        metrics=tuple(scored), top1=True)
                    self._save_rung(spec, record)
                else:
                    reports = self._evaluate_rung(spec, ri, rung, active,
                                                  candidates,
                                                  deadline=deadline)
                    local, scores = select_survivors(reports, spec.objective,
                                                     spec.eta)
                    metrics = tuple(
                        {m: (math.nan if r is None else float(r.metric(m)))
                         for m in SUMMARY_METRICS}
                        for r in reports)
                    record = RungRecord(
                        index=ri, candidates=tuple(active),
                        scores=tuple(tuple(row) for row in scores),
                        survivors=tuple(active[j] for j in local),
                        metrics=metrics)
                    self._save_rung(spec, record)
                sp.set(survivors=len(record.survivors))
            records.append(record)
            active = list(record.survivors)
        return SearchResult(spec=spec, candidates=candidates,
                            rungs=tuple(records))
