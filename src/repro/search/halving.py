"""Successive-halving schedule over a search space: specs and selection.

A :class:`SearchSpec` is the whole budgeted search as one JSON document:
the :class:`~repro.search.space.SearchSpace`, the sampling strategy, the
selection objective, and a ladder of :class:`RungSpec` fidelities. Rung 0
scores every candidate with a cheap Figure-3-style protocol; each rung
keeps the top ``1/eta`` (:func:`select_survivors`) and promotes them to
the next rung's higher fidelity — more alignment-simulation samples, a
bigger accuracy batch, extra sources — until an optional final
``top1=True`` rung scores the few remaining designs on the model-level
top-1 accuracy path (the paper's Table-2-style check).

Objectives are :meth:`repro.api.DesignReport.metric` strings
(``"-median_contaminated_bits"``, ``"tops_per_mm2@fp16"`` — higher is
better after the optional leading ``-``), or ``"pareto:<x>,<y>"`` which
keeps exactly the :func:`repro.api.pareto_frontier` members in the
``(x, y)`` plane — the right objective when the paper's question is a
frontier (accuracy x TOPS/mm2), not a scalar winner.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, asdict

from repro.api.design import DesignReport, pareto_frontier
from repro.api.spec import (
    DEFAULT_OP_PRECISIONS,
    ExecutorSpec,
    RunSpec,
    _as_op_precisions,
    _dump_spec_json,
    _load_spec_json,
    _result_fingerprint,
)
from repro.search.space import Candidate, SearchSpace
from repro.search.strategies import STRATEGIES, generate_candidates

__all__ = ["RungSpec", "SearchSpec", "DEFAULT_RUNGS", "keep_count",
           "select_survivors"]


@dataclass(frozen=True)
class RungSpec:
    """One fidelity level of the halving ladder.

    ``samples`` feeds the alignment-factor performance simulation;
    ``batch``/``sources``/``n``/``chunks``/``seed`` build the rung's
    accuracy protocol (a :class:`~repro.api.RunSpec` template via
    :meth:`accuracy_spec`). ``top1=True`` marks a model-level rung: instead
    of the Figure-3 protocol, survivors are scored by top-1 accuracy of the
    ``top1_style`` trained model on ``top1_n_eval`` held-out samples at the
    design's resolved precision width — only valid as the final rung.
    """

    samples: int = 96
    batch: int = 2000
    sources: tuple[str, ...] = ("laplace", "normal")
    n: int = 16
    chunks: int = 1
    seed: int = 0
    top1: bool = False
    top1_style: str = "plain"
    top1_n_eval: int = 64

    def __post_init__(self) -> None:
        object.__setattr__(self, "sources", tuple(self.sources))
        if self.samples < 1 or self.batch < 1 or self.top1_n_eval < 1:
            raise ValueError("rung samples, batch, and top1_n_eval must be >= 1")
        if not self.sources:
            raise ValueError("rung needs at least one accuracy source")

    def accuracy_spec(self) -> RunSpec:
        """The rung's accuracy-protocol template (points are injected per
        design by the evaluating session)."""
        return RunSpec(name="search-rung", sources=self.sources,
                       batch=self.batch, n=self.n, chunks=self.chunks,
                       seed=self.seed)

    def to_dict(self) -> dict:
        d = asdict(self)
        d["sources"] = list(self.sources)
        return d

    @classmethod
    def from_dict(cls, d) -> "RungSpec":
        if isinstance(d, RungSpec):
            return d
        return cls(**d)


# Two-rung default: a cheap screen at a quarter of the standard alignment
# fidelity, then the survivors at DesignPoint's full default fidelity with
# a doubled accuracy batch.
DEFAULT_RUNGS = (RungSpec(), RungSpec(samples=384, batch=8000))


def keep_count(n: int, eta: int) -> int:
    """Survivor count of one rung: top ``1/eta``, never below one."""
    return max(1, math.ceil(n / eta))


def _scores_for(reports, metrics: tuple[str, ...]) -> list[list[float]]:
    return [
        [math.nan] * len(metrics) if r is None
        else [float(r.metric(m)) for m in metrics]
        for r in reports
    ]


def select_survivors(
    reports: "list[DesignReport | None]", objective: str, eta: int,
) -> tuple[list[int], list[list[float]]]:
    """``(survivor_indices, scores)`` of one rung.

    ``scores[i]`` lists candidate *i*'s objective-axis values (one entry
    for metric objectives, two for ``pareto:``). Metric objectives keep
    the ``keep_count`` best — higher is better, NaN sorts last, ties break
    by candidate index — so selection is a pure function of the scores.
    Pareto objectives keep every frontier member (the frontier *is* the
    answer; ranking inside it would be arbitrary), however many there are.
    Indices come back in candidate order either way.
    """
    if objective.startswith("pareto:"):
        axes = tuple(a.strip() for a in objective[len("pareto:"):].split(","))
        if len(axes) != 2 or not all(axes):
            raise ValueError(
                f"pareto objective {objective!r} needs exactly two "
                "comma-separated metric axes")
        scores = _scores_for(reports, axes)
        indexed = [(i, r) for i, r in enumerate(reports) if r is not None]
        front = pareto_frontier(indexed, lambda t: scores[t[0]][0],
                                lambda t: scores[t[0]][1])
        survivors = sorted(i for i, _ in front)
        if not survivors:
            raise ValueError(
                f"objective {objective!r} left an empty frontier "
                "(all candidates non-finite on some axis)")
        return survivors, scores
    scores = _scores_for(reports, (objective,))
    keep = keep_count(len(reports), eta)
    ranked = sorted(
        range(len(reports)),
        key=lambda i: ((-scores[i][0] if math.isfinite(scores[i][0])
                        else math.inf), i),
    )
    return sorted(ranked[:keep]), scores


@dataclass(frozen=True)
class SearchSpec:
    """A budgeted design-space search as one serializable document.

    ``count`` is required by the sampling strategies and ignored by
    ``"grid"``; ``op_precisions``/``rng`` parametrize every generated
    :class:`~repro.api.DesignPoint` exactly as on
    :class:`~repro.api.DesignSweepSpec`. ``executor`` pins the replay
    fan-out backend (runner ``--backend`` overrides; never changes
    results). The spec's :meth:`fingerprint` keys rung records in a shared
    :class:`repro.store.ResultStore` — ``name`` and ``executor`` are
    excluded, so renaming or re-backending a search resumes its own
    partial results.
    """

    name: str = "search"
    space: SearchSpace = SearchSpace()
    strategy: str = "grid"
    count: int | None = None
    seed: int = 0
    objective: str = "-median_contaminated_bits"
    eta: int = 3
    rungs: tuple[RungSpec, ...] = DEFAULT_RUNGS
    op_precisions: tuple[tuple[int, int], ...] = DEFAULT_OP_PRECISIONS
    rng: int = 41
    executor: ExecutorSpec | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "space", SearchSpace.from_dict(self.space))
        object.__setattr__(self, "rungs", tuple(
            RungSpec.from_dict(r) for r in self.rungs))
        object.__setattr__(self, "op_precisions",
                           _as_op_precisions(self.op_precisions))
        if self.executor is not None and not isinstance(self.executor, ExecutorSpec):
            object.__setattr__(self, "executor",
                               ExecutorSpec.from_dict(self.executor))
        if self.strategy not in STRATEGIES:
            raise ValueError(f"unknown strategy {self.strategy!r}; "
                             f"pick from {STRATEGIES}")
        if self.strategy != "grid" and self.count is None:
            raise ValueError(f"strategy {self.strategy!r} needs a count")
        if self.eta < 2:
            raise ValueError(f"eta must be >= 2, got {self.eta}")
        if not self.rungs:
            raise ValueError("a search needs at least one rung")
        if any(r.top1 for r in self.rungs[:-1]):
            raise ValueError("a top1 rung must be the final rung")
        self._check_objective()

    def _check_objective(self) -> None:
        obj = self.objective
        if obj.startswith("pareto:"):
            axes = obj[len("pareto:"):].split(",")
            if len(axes) != 2 or not all(a.strip() for a in axes):
                raise ValueError(
                    f"pareto objective {obj!r} needs exactly two "
                    "comma-separated metric axes")
        elif not obj.lstrip("-"):
            raise ValueError("objective must name a report metric")

    def candidates(self) -> tuple[Candidate, ...]:
        """The rung-0 candidate tuple — deterministic from
        (space, strategy, count, seed)."""
        return generate_candidates(self.space, self.strategy,
                                   self.count, self.seed)

    # -- JSON round trip ---------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "space": self.space.to_dict(),
            "strategy": self.strategy,
            "count": self.count,
            "seed": self.seed,
            "objective": self.objective,
            "eta": self.eta,
            "rungs": [r.to_dict() for r in self.rungs],
            "op_precisions": [list(p) for p in self.op_precisions],
            "rng": self.rng,
            "executor": None if self.executor is None else self.executor.to_dict(),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "SearchSpec":
        if isinstance(d, SearchSpec):
            return d
        return cls(**d)

    def fingerprint(self) -> str:
        """Stable cross-process key for rung records (``name`` and
        ``executor`` excluded, as on the other spec kinds)."""
        return _result_fingerprint("search_spec", self.to_dict())

    def to_json(self, path=None) -> str:
        return _dump_spec_json(self.to_dict(), path)

    @classmethod
    def from_json(cls, source) -> "SearchSpec":
        """Load from a JSON string or a path to a JSON file."""
        return cls.from_dict(_load_spec_json(source))
