"""repro.search — budgeted design-space search over the MC-IPU grammars.

Three layers (one module each):

* :mod:`~repro.search.space` / :mod:`~repro.search.strategies` — a
  JSON-round-trippable :class:`SearchSpace` over the design/tile/precision
  grammars, with ``grid`` / ``random`` / ``latin-hypercube`` candidate
  generators, deterministic from a seeded RNG.
* :mod:`~repro.search.halving` — the :class:`SearchSpec` document (space +
  strategy + objective + rung ladder) and successive-halving selection.
* :mod:`~repro.search.session` — the :class:`SearchSession` driver:
  rung-by-rung evaluation through a shared
  :class:`~repro.api.DesignSession` (or a fleet), resumable through a
  shared :class:`~repro.store.ResultStore`.

Front doors: ``runner --search spec.json`` and ``POST /v1/search``.
"""

from repro.search.halving import (
    DEFAULT_RUNGS,
    RungSpec,
    SearchSpec,
    keep_count,
    select_survivors,
)
from repro.search.session import (
    RungRecord,
    SearchResult,
    SearchSession,
    render_search,
)
from repro.search.space import Candidate, SearchSpace
from repro.search.strategies import STRATEGIES, generate_candidates

__all__ = [
    "SearchSpace",
    "Candidate",
    "STRATEGIES",
    "generate_candidates",
    "RungSpec",
    "SearchSpec",
    "DEFAULT_RUNGS",
    "keep_count",
    "select_survivors",
    "RungRecord",
    "SearchResult",
    "SearchSession",
    "render_search",
]
