"""Candidate generators over a :class:`~repro.search.space.SearchSpace`.

Three strategies, all deterministic functions of ``(space, count, seed)``:

``grid``
    The full valid cross product, canonical order. ``count`` is ignored.

``random``
    ``count`` distinct candidates drawn uniformly (without replacement)
    from the product, kept in canonical product order so downstream rung
    records are position-stable.

``latin-hypercube``
    ``count`` axis-stratified samples: each design axis is split into
    ``count`` equal strata and every stratum is visited exactly once per
    axis (an independent permutation per axis), giving one-dimensional
    coverage no plain random draw guarantees. Combinations the registries
    reject are dropped and duplicates collapse, so the result may be
    shorter than ``count``.

Everything routes through ``np.random.default_rng(seed)`` — no global
RNG, no hash ordering — so the same spec yields the identical candidate
tuple in every process, under any ``PYTHONHASHSEED``.
"""

from __future__ import annotations

import numpy as np

from repro.search.space import Candidate, SearchSpace

__all__ = ["STRATEGIES", "generate_candidates"]

STRATEGIES = ("grid", "random", "latin-hypercube")


def _require_count(strategy: str, count) -> int:
    if count is None:
        raise ValueError(f"strategy {strategy!r} needs an explicit count")
    count = int(count)
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    return count


def _random(space: SearchSpace, count: int, seed: int) -> tuple[Candidate, ...]:
    pool = space.candidates()
    if not pool:
        raise ValueError("search space has no valid candidates")
    count = min(count, len(pool))
    rng = np.random.default_rng(seed)
    picks = rng.choice(len(pool), size=count, replace=False)
    return tuple(pool[i] for i in sorted(int(i) for i in picks))


def _latin_hypercube(space: SearchSpace, count: int, seed: int) -> tuple[Candidate, ...]:
    axes = space.design_axes()
    empty = [name for name, levels in axes.items() if not levels]
    if empty:
        raise ValueError(
            f"latin-hypercube stratifies the design axes, but {empty} are "
            "empty (explicit-designs-only spaces take 'grid' or 'random')")
    rng = np.random.default_rng(seed)
    # One independent stratum permutation per axis; sample i takes stratum
    # perm[i], mapped to the level index at the stratum's midpoint.
    columns: dict[str, list] = {}
    for name, levels in axes.items():
        perm = rng.permutation(count)
        idx = ((perm + 0.5) / count * len(levels)).astype(int)
        columns[name] = [levels[min(j, len(levels) - 1)] for j in idx]
    out: list[Candidate] = []
    seen: set = set()
    for i in range(count):
        levels = {name: columns[name][i] for name in axes}
        tile, precision = levels.pop("tiles"), levels.pop("precisions")
        candidate = space.candidate_at({**levels, "tiles": tile,
                                        "precisions": precision})
        if candidate is None:
            continue
        key = (candidate.design, candidate.tile, candidate.precision)
        if key in seen:
            continue
        seen.add(key)
        out.append(candidate)
    if not out:
        raise ValueError("latin-hypercube drew no valid candidates; "
                         "widen the space or raise count")
    return tuple(out)


def generate_candidates(
    space: SearchSpace, strategy: str = "grid",
    count: int | None = None, seed: int = 0,
) -> tuple[Candidate, ...]:
    """The candidate tuple of one (space, strategy, count, seed). See the
    module docstring for strategy semantics."""
    if strategy == "grid":
        candidates = space.candidates()
        if not candidates:
            raise ValueError("search space has no valid candidates")
        return candidates
    if strategy == "random":
        return _random(space, _require_count(strategy, count), seed)
    if strategy == "latin-hypercube":
        return _latin_hypercube(space, _require_count(strategy, count), seed)
    raise ValueError(f"unknown strategy {strategy!r}; pick from {STRATEGIES}")
