"""Declarative design/tile/precision spaces over the registry grammars.

A :class:`SearchSpace` describes a *set* of joint design-space coordinates
without enumerating them by hand: axes over the ``mc-ipu:AxB@Wb[/itN/nN/
ehuN]`` grammar (multiplier shape, adder width, iteration/cluster options),
plus tile strings and optional :class:`~repro.api.PrecisionPoint`
overrides. Each axis is a JSON-friendly value — a list of choices or a
``{"min", "max", "step"}`` range — so a whole space serializes inside a
:class:`~repro.search.halving.SearchSpec` document.

The space's product is a tuple of :class:`Candidate` triples
``(design, tile, precision)`` in a canonical, hash-seed-independent order;
combinations the registries reject (unservable widths, malformed shapes)
are skipped deterministically. Strategies
(:mod:`repro.search.strategies`) pick candidates from this product — or
stratify over the raw axes — and the halving scheduler
(:mod:`repro.search.session`) turns survivors into
:class:`~repro.api.DesignPoint` evaluations.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from repro.api.spec import DesignPoint, PrecisionPoint
from repro.hw.registry import parse_design, parse_tile

__all__ = ["SearchSpace", "Candidate"]

# Grammar kinds a space may synthesize design strings for.
DESIGN_KINDS = ("mc-ipu", "int", "nvdla-like", "native")


def _as_choices(value, name: str, cast=int, allow_empty: bool = False) -> tuple:
    """An axis value — a scalar, a choice list, or a range dict — as a
    tuple of levels. ``{"min": 16, "max": 28, "step": 4}`` expands
    inclusively; ``None`` entries pass through (optional axes); an empty
    design axis (``allow_empty``) zeroes the synthesized product, for
    spaces built purely from explicit ``designs``."""
    if isinstance(value, dict):
        try:
            lo, hi = int(value["min"]), int(value["max"])
        except KeyError as exc:
            raise ValueError(f"axis {name!r} range needs 'min' and 'max' "
                             f"(got {sorted(value)})") from exc
        step = int(value.get("step", 1))
        if step < 1 or hi < lo:
            raise ValueError(f"axis {name!r} range {value!r} is empty or "
                             "descending")
        return tuple(range(lo, hi + 1, step))
    if isinstance(value, (list, tuple)):
        levels = tuple(None if v is None else cast(v) for v in value)
    else:
        levels = (None if value is None else cast(value),)
    if not levels and not allow_empty:
        raise ValueError(f"axis {name!r} has no levels")
    return levels


def _as_precisions(value) -> tuple:
    if value is None:
        return (None,)
    if isinstance(value, (dict, PrecisionPoint)):
        value = (value,)
    out = tuple(
        None if p is None
        else (p if isinstance(p, PrecisionPoint) else PrecisionPoint.from_dict(p))
        for p in value
    )
    return out or (None,)


@dataclass(frozen=True)
class Candidate:
    """One pre-fidelity search coordinate: design x tile x precision.

    Fidelity (alignment ``samples``, accuracy protocol) is *not* part of a
    candidate — the halving scheduler assigns it per rung via
    :meth:`point`.
    """

    design: str
    tile: str = "small"
    precision: PrecisionPoint | None = None

    def __post_init__(self) -> None:
        if self.precision is not None and not isinstance(self.precision, PrecisionPoint):
            object.__setattr__(self, "precision",
                               PrecisionPoint.from_dict(self.precision))

    def point(self, op_precisions, samples: int, rng: int) -> DesignPoint:
        """The :class:`~repro.api.DesignPoint` of this candidate at one
        fidelity (alignment-simulation ``samples``/``rng``)."""
        return DesignPoint(design=self.design, tile=self.tile,
                           precision=self.precision,
                           op_precisions=op_precisions,
                           samples=samples, rng=rng)

    def to_dict(self) -> dict:
        return {"design": self.design, "tile": self.tile,
                "precision": None if self.precision is None
                else self.precision.to_dict()}

    @classmethod
    def from_dict(cls, d) -> "Candidate":
        if isinstance(d, Candidate):
            return d
        if isinstance(d, str):
            return cls(design=d)
        return cls(**d)


@dataclass(frozen=True)
class SearchSpace:
    """See module docstring. All axes accept choice lists or range dicts.

    ``kinds``/``mult_a``/``mult_b``/``adder_width``/``it``/``n_inputs``/
    ``ehu`` span the design grammar (``it=None`` lets the registry derive
    the temporal iteration count; ``it`` only applies to ``mc-ipu``);
    ``designs`` appends explicit registry strings (paper names, custom
    grammars) after the synthesized grid; ``tiles`` and ``precisions``
    cross everything as in :class:`~repro.api.DesignSweepSpec`.
    """

    kinds: tuple[str, ...] = ("mc-ipu",)
    mult_a: tuple[int, ...] = (4,)
    mult_b: tuple[int, ...] = (4,)
    adder_width: tuple[int, ...] = (16, 20, 24, 28)
    it: tuple[int | None, ...] = (None,)
    n_inputs: tuple[int, ...] = (16,)
    ehu: tuple[int, ...] = (8,)
    designs: tuple[str, ...] = ()
    tiles: tuple[str, ...] = ("small",)
    precisions: tuple[PrecisionPoint | None, ...] = (None,)

    def __post_init__(self) -> None:
        object.__setattr__(self, "kinds",
                           _as_choices(self.kinds, "kinds", str, allow_empty=True))
        for axis in ("mult_a", "mult_b", "adder_width", "it", "n_inputs", "ehu"):
            object.__setattr__(self, axis, _as_choices(getattr(self, axis), axis,
                                                       allow_empty=True))
        for kind in self.kinds:
            if kind not in DESIGN_KINDS:
                raise ValueError(f"unknown design kind {kind!r}; "
                                 f"pick from {DESIGN_KINDS}")
        object.__setattr__(self, "designs",
                           tuple(str(d) for d in (self.designs or ())))
        tiles = _as_choices(self.tiles, "tiles", str)
        for tile in tiles:
            parse_tile(tile)  # fail early on malformed tile strings
        object.__setattr__(self, "tiles", tiles)
        object.__setattr__(self, "precisions", _as_precisions(self.precisions))

    # -- enumeration -------------------------------------------------------

    @staticmethod
    def design_string(kind: str, a: int, b: int, width: int,
                      it: int | None, n: int, ehu: int) -> str:
        """The grammar spelling of one design-axis combination."""
        spec = f"{kind}:{a}x{b}@{width}b"
        if it is not None and kind == "mc-ipu":
            spec += f"/it{it}"
        if n != 16:
            spec += f"/n{n}"
        if ehu != 8:
            spec += f"/ehu{ehu}"
        return spec

    def design_axes(self) -> dict[str, tuple]:
        """The stratifiable axes, name -> levels, in canonical order (the
        declaration order of the dataclass fields)."""
        return {"kinds": self.kinds, "mult_a": self.mult_a,
                "mult_b": self.mult_b, "adder_width": self.adder_width,
                "it": self.it, "n_inputs": self.n_inputs, "ehu": self.ehu,
                "tiles": self.tiles, "precisions": self.precisions}

    def candidate_at(self, levels: dict) -> Candidate | None:
        """The candidate of one axis-level assignment, or ``None`` when the
        registries reject the combination (deterministic skip)."""
        design = self.design_string(
            levels["kinds"], levels["mult_a"], levels["mult_b"],
            levels["adder_width"], levels["it"], levels["n_inputs"],
            levels["ehu"])
        return self._validated(design, levels["tiles"], levels["precisions"])

    @staticmethod
    def _validated(design: str, tile: str, precision) -> Candidate | None:
        try:
            canonical = parse_design(design).name
            candidate = Candidate(canonical, tile, precision)
            # reject unservable width/precision combos now, not mid-rung
            candidate.point(((16, 16),), samples=1, rng=0).resolved_precision()
        except (ValueError, KeyError):
            return None
        return candidate

    def candidates(self) -> tuple[Candidate, ...]:
        """The full valid cross product: synthesized designs (axes in
        declaration order) then explicit ``designs``, each crossed with
        tiles (middle) and precisions (inner); invalid combinations are
        skipped and duplicate canonical designs keep their first spelling.
        Pure function of the space — no hashing, no wall clock — so every
        process enumerates the identical tuple."""
        design_strings: list[str] = [
            self.design_string(kind, a, b, w, it, n, e)
            for kind in self.kinds
            for a in self.mult_a
            for b in self.mult_b
            for w in self.adder_width
            for it in self.it
            for n in self.n_inputs
            for e in self.ehu
        ]
        design_strings.extend(self.designs)
        out: list[Candidate] = []
        seen: set[str] = set()
        for design in design_strings:
            try:
                canonical = parse_design(design).name
            except (ValueError, KeyError):
                continue
            if canonical in seen:
                continue
            seen.add(canonical)
            for tile in self.tiles:
                for precision in self.precisions:
                    candidate = self._validated(canonical, tile, precision)
                    if candidate is not None:
                        out.append(candidate)
        return tuple(out)

    # -- JSON round trip ---------------------------------------------------

    def to_dict(self) -> dict:
        d = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if f.name == "precisions":
                d[f.name] = [None if p is None else p.to_dict() for p in value]
            else:
                d[f.name] = list(value)
        return d

    @classmethod
    def from_dict(cls, d) -> "SearchSpace":
        if isinstance(d, SearchSpace):
            return d
        return cls(**d)
