"""Train a small CNN, then evaluate it with every convolution computed
through the emulated approximate FP-IP at several IPU precisions.

Reproduces the §3.1 protocol (the paper runs ResNet-18/50 on ImageNet; we
run a small conv net on synthetic data — see DESIGN.md's substitution
table). Expected outcome, as in the paper: precision >= 12 matches the
float32 reference on every batch; 8-bit drifts on individual batches.

Usage: python examples/accuracy_sweep.py [--quick]
"""

import sys

import numpy as np

from repro.analysis.accuracy import accuracy_vs_precision
from repro.api import EmulationSession
from repro.nn.datasets import make_pattern_dataset
from repro.nn.models import tiny_convnet
from repro.nn.training import train
from repro.utils.table import render_table


def main(quick: bool = False) -> None:
    rng = np.random.default_rng(7)
    print("training a small CNN on synthetic oriented-grating images...")
    dataset = make_pattern_dataset(n_samples=512 if quick else 768, noise=3.2, rng=rng)
    model = tiny_convnet(rng=rng)
    result = train(model, dataset, epochs=4 if quick else 6, rng=rng)
    print(f"float32 training done: test accuracy {result.test_accuracy:.3f}")

    n_eval = 32 if quick else 96
    images = dataset.images[-n_eval:]
    labels = dataset.labels[-n_eval:]
    precisions = (8, 12) if quick else (8, 10, 12, 16, 28)
    print(f"evaluating {n_eval} images through the emulated IPU "
          f"at precisions {precisions} (FP32 accumulation)...")
    # one session spans every precision and batch: conv weights are decoded
    # once per layer, input-batch activation plans are shared across points
    with EmulationSession() as session:
        points = accuracy_vs_precision(model, images, labels, precisions,
                                       batch_size=16, session=session)
        st = session.stats
    print(f"(session plan cache: {st.plan_misses} decodes, {st.plan_hits} reuses)")

    ref = next(p for p in points if p.precision is None)
    rows = []
    for p in points:
        rows.append([
            "fp32 (reference)" if p.precision is None else f"IPU({p.precision})",
            f"{p.accuracy:.4f}",
            f"{p.accuracy - ref.accuracy:+.4f}",
            f"{max(abs(a - b) for a, b in zip(p.per_batch, ref.per_batch)):.4f}",
        ])
    print(render_table(
        ["arithmetic", "top-1", "delta", "max per-batch deviation"], rows,
        title="Accuracy vs IPU precision",
    ))
    print("\npaper §3.1: precision >= 12 matches FP32 on all batches; 8-bit",
          "matches on average but fluctuates per batch.")


if __name__ == "__main__":
    main(quick="--quick" in sys.argv)
