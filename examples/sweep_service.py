"""Service demo: submit one sweep twice, watch coalescing + the store work.

Starts the HTTP sweep service in-process (ephemeral port, temporary result
store), submits the committed quick Figure-3 spec twice *concurrently* (the
second rides the first's in-flight job) and then once more after completion
(served from the persistent store), printing the service's own stats after
each step. The same flow works against a standalone server::

    python -m repro.experiments.runner --serve --port 8731 --store results/
    python -m repro.experiments.runner --submit examples/specs/fig3_quick.json \
        --url http://127.0.0.1:8731
"""

import tempfile
import threading
from pathlib import Path

from repro.service import ServiceClient, ServiceServer

SPEC = Path(__file__).resolve().parent / "specs" / "fig3_quick.json"


def main() -> None:
    with tempfile.TemporaryDirectory() as store_dir, \
            ServiceServer(port=0, store=store_dir) as server:
        client = ServiceClient(server.url)
        print(f"service up at {server.url} (store: {store_dir})\n")

        # two concurrent submissions of one spec -> one computation
        tickets = [None, None]
        def submit(i):
            tickets[i] = client.submit(SPEC)
        threads = [threading.Thread(target=submit, args=(i,)) for i in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        results = [client.result(t["job"]) for t in tickets]
        stats = client.stats()
        print(f"submitted twice concurrently: jobs "
              f"{sorted({t['job'] for t in tickets})}")
        print(f"  coalesced requests: {stats['coalesced']}")
        print(f"  identical payloads: {results[0] == results[1]}")

        # a third submission after completion is served from the store
        third = client.run(SPEC)
        stats = client.stats()
        print("\nresubmitted after completion:")
        print(f"  store hits: {stats['store']['hits']} "
              f"(puts: {stats['store']['puts']}, "
              f"bytes: {stats['store']['bytes']})")
        print(f"  still identical: {third == results[0]}")

        print(f"\njobs total: {stats['jobs']['total']}, "
              f"errors: {stats['jobs']['error']}")
        print("\nfirst lines of the rendered sweep:")
        print("\n".join(third["rendered"].splitlines()[:6]))


if __name__ == "__main__":
    main()
