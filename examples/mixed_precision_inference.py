"""Per-layer mixed-precision inference scheduling on the tile simulator.

Assigns each conv layer of a workload a data type (INT4 / INT8 / FP16) the
way a mixed-precision quantization scheme would (first/last layers kept in
FP16, sensitive thin layers INT8, the bulk INT4), then reports the cycle
cost per layer on the MC-IPU tile versus two rigid alternatives: an
FP16-everything accelerator and the NVDLA-style wide-adder baseline.

This is the deployment story of the paper's intro: one INT4-based tile
serves the whole mixed schedule, paying FP overhead only where FP is used.
Each layer's exponent statistics are sampled exactly once and shared by
the mixed schedule and the all-FP16 alternative — no configuration
re-samples or re-decodes operands.

Usage: python examples/mixed_precision_inference.py [resnet18|resnet50|inceptionv3]
"""

import sys

from repro.api import parse_accumulator
from repro.ipu.mc_ipu import BASELINE_ADDER_WIDTH
from repro.nibble.schedule import iteration_count
from repro.nn.zoo import WORKLOADS
from repro.tile.config import SMALL_TILE
from repro.tile.simulator import FP16_ITERATIONS, simulate_layer
from repro.tile.workload import layer_ip_ops, sample_product_exponents
from repro.utils.table import render_table


def assign_precision(layer, index: int, total: int) -> str:
    """A representative mixed-precision schedule (paper intro's use case)."""
    if index == 0 or index == total - 1:
        return "fp16"       # first/last layers: keep FP (Zhu et al. 2016)
    if layer.c_in < 64 or "down" in layer.name:
        return "int8"       # thin/projection layers: sensitive to 4-bit
    return "int4"           # the bulk: INT4 quantization


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "resnet18"
    layers = WORKLOADS[workload]()
    tile = SMALL_TILE.with_precision(16, 1)  # MC-IPU(16), clusters of 1
    parallel = tile.n_tiles * tile.ipus_per_tile
    # FP32 accumulation -> 28-bit software precision, via the registry
    software_precision = parse_accumulator("fp32").software_precision

    rows = []
    mixed_total = fp16_total = 0.0
    for i, layer in enumerate(layers):
        steps = -(-layer_ip_ops(layer, tile.c_unroll) // parallel)
        mode = assign_precision(layer, i, len(layers))
        # sample the layer's alignment statistics once; both the mixed
        # schedule and the all-FP16 alternative are costed off these samples
        exps = sample_product_exponents(
            layer, tile.c_unroll, tile.effective_cluster_size, 256, rng=i
        )
        fp16_cycles = simulate_layer(layer, tile, software_precision,
                                     product_exps=exps).cycles
        if mode == "fp16":
            cycles = fp16_cycles
        elif mode == "int8":
            cycles = steps * iteration_count(8, 8)
        else:
            cycles = steps * iteration_count(4, 4)
        mixed_total += cycles
        fp16_total += fp16_cycles
        if i < 8 or i >= len(layers) - 2:  # keep the table readable
            rows.append([layer.name, mode, int(steps), int(cycles)])
        elif i == 8:
            rows.append(["...", "...", "...", "..."])

    baseline_fp16 = sum(
        -(-layer_ip_ops(l, 8) // parallel) * FP16_ITERATIONS for l in layers
    )
    print(render_table(["layer", "precision", "steps", "cycles"], rows,
                       title=f"Mixed-precision schedule on MC-IPU(16) tiles — {workload}"))
    print(f"\ntotal cycles, mixed schedule:        {mixed_total:,.0f}")
    print(f"total cycles, all-FP16 on this tile: {fp16_total:,.0f} "
          f"({fp16_total / mixed_total:.2f}x the mixed schedule)")
    print(f"total cycles, all-FP16 on {BASELINE_ADDER_WIDTH}b baseline: {baseline_fp16:,.0f}")
    print("\nthe mixed schedule exploits INT4's 9x cycle advantage over FP16",
          "wherever quantization tolerates it, on one physical tile.")


if __name__ == "__main__":
    main()
