"""Explore the accelerator design space: adder-tree precision x clustering.

For a chosen workload, sweeps MC-IPU precision and cluster size, reporting
normalized execution time (performance cost) next to tile area and power
(hardware cost) — the Figure 8 + Figure 10 trade-off in one table. Use it
to pick a design point for your own precision/throughput requirements.

Usage: python examples/design_space.py [resnet18|resnet50|inceptionv3] [--backward]
"""

import sys

from repro.hw.tile_cost import tile_cost
from repro.ipu.mc_ipu import BASELINE_ADDER_WIDTH
from repro.nn.zoo import WORKLOADS
from repro.tile.config import SMALL_TILE
from repro.tile.simulator import simulate_network
from repro.utils.table import render_table


def main() -> None:
    args = [a for a in sys.argv[1:] if not a.startswith("--")]
    workload = args[0] if args else "resnet18"
    direction = "backward" if "--backward" in sys.argv else "forward"
    layers = WORKLOADS[workload]()
    software_precision = 28  # FP32 accumulation

    base_tile = SMALL_TILE.with_precision(BASELINE_ADDER_WIDTH)
    baseline = simulate_network(layers, base_tile, software_precision, direction,
                                samples=256, rng=0)
    base_cost = tile_cost(base_tile, mode="fp")

    rows = []
    for width in (12, 16, 20, 28):
        for cluster in (1, 4, None):
            tile = SMALL_TILE.with_precision(width, cluster)
            perf = simulate_network(layers, tile, software_precision, direction,
                                    samples=256, rng=0)
            cost = tile_cost(tile, mode="fp")
            rows.append([
                width,
                "tile" if cluster is None else cluster,
                round(perf.normalized_to(baseline), 3),
                f"{100 * (cost.area_mm2 / base_cost.area_mm2 - 1):+.1f}%",
                f"{100 * (cost.power_w / base_cost.power_w - 1):+.1f}%",
            ])
    rows.append([BASELINE_ADDER_WIDTH, "-", 1.0, "+0.0%", "+0.0%"])
    print(render_table(
        ["adder width", "cluster", "normalized time", "area vs baseline",
         "power vs baseline"],
        rows,
        title=f"Design space: {workload} ({direction}), FP32 accumulation, 8-input tile",
    ))
    print("\nreading guide: (12,1) and (16,1) are the paper's Pareto picks —",
          "large area/power savings for modest FP-mode slowdowns.")


if __name__ == "__main__":
    main()
