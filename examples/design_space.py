"""Explore the accelerator design space: adder-tree precision x clustering,
then invent designs of your own and Pareto-rank them.

Part 1 (tile view): for a chosen workload, sweeps MC-IPU precision and
cluster size, reporting normalized execution time (performance cost) next
to tile area and power (hardware cost) — the Figure 8 + Figure 10 trade-off
in one table.

Exponent statistics are sampled *once per (layer, cluster)* and shared by
every adder width (`simulate_layer(product_exps=...)`): the width only
changes how the same alignment shifts are served, so no precision point
re-samples or re-decodes anything. The FP32-accumulation software precision
comes from the accumulator registry instead of a magic number.

Part 2 (design view): a `repro.api.DesignSession` evaluates paper designs
*and* custom registry strings (`mc-ipu:8x4@24b`, `nvdla-like:...`) jointly —
numerics error sweep + TOPS/mm2 + TOPS/W per design in one `evaluate()` —
and `pareto_frontier` ranks the FP16-density x numerics trade-off. This is
the Table-1 machinery opened up to arbitrary design points.

Usage: python examples/design_space.py [resnet18|resnet50|inceptionv3] [--backward]
"""

import sys

import numpy as np

from repro.api import (
    DesignSession,
    DesignSweepSpec,
    pareto_frontier,
    parse_accumulator,
    render_design_reports,
)
from repro.hw.tile_cost import tile_cost
from repro.ipu.mc_ipu import BASELINE_ADDER_WIDTH
from repro.nn.zoo import WORKLOADS
from repro.tile.config import SMALL_TILE
from repro.tile.simulator import NetworkPerf, simulate_layer
from repro.tile.workload import sample_product_exponents
from repro.utils.table import render_table


def simulate_shared(layers, tile, software_precision, direction, layer_exps):
    """simulate_network off pre-sampled per-layer exponents."""
    perfs = [
        simulate_layer(layer, tile, software_precision, direction,
                       product_exps=exps)
        for layer, exps in zip(layers, layer_exps)
    ]
    return NetworkPerf(name="", layers=perfs)


def sample_layers(layers, tile, direction, samples, rng):
    """One exponent sampling pass per layer for this cluster geometry."""
    seeds = np.random.default_rng(rng).integers(0, 2**63 - 1, size=len(layers))
    return [
        sample_product_exponents(
            layer, tile.c_unroll, tile.effective_cluster_size, samples,
            direction=direction, rng=np.random.default_rng(seed),
        )
        for layer, seed in zip(layers, seeds)
    ]


def main() -> None:
    args = [a for a in sys.argv[1:] if not a.startswith("--")]
    workload = args[0] if args else "resnet18"
    direction = "backward" if "--backward" in sys.argv else "forward"
    layers = WORKLOADS[workload]()
    # §3.1: FP32 accumulation needs 28 bits of software precision
    software_precision = parse_accumulator("fp32").software_precision
    samples = 256

    base_tile = SMALL_TILE.with_precision(BASELINE_ADDER_WIDTH)
    base_exps = sample_layers(layers, base_tile, direction, samples, rng=0)
    baseline = simulate_shared(layers, base_tile, software_precision, direction, base_exps)
    base_cost = tile_cost(base_tile, mode="fp")

    rows = []
    for cluster in (1, 4, None):
        # alignment statistics depend on the lockstep group, not the adder
        # width: sample once per cluster size, reuse for every width
        tile0 = SMALL_TILE.with_precision(BASELINE_ADDER_WIDTH, cluster)
        layer_exps = sample_layers(layers, tile0, direction, samples, rng=0)
        for width in (12, 16, 20, 28):
            tile = SMALL_TILE.with_precision(width, cluster)
            perf = simulate_shared(layers, tile, software_precision, direction,
                                   layer_exps)
            cost = tile_cost(tile, mode="fp")
            rows.append([
                width,
                "tile" if cluster is None else cluster,
                round(perf.normalized_to(baseline), 3),
                f"{100 * (cost.area_mm2 / base_cost.area_mm2 - 1):+.1f}%",
                f"{100 * (cost.power_w / base_cost.power_w - 1):+.1f}%",
            ])
    rows.append([BASELINE_ADDER_WIDTH, "-", 1.0, "+0.0%", "+0.0%"])
    rows.sort(key=lambda r: (r[0], str(r[1])))
    print(render_table(
        ["adder width", "cluster", "normalized time", "area vs baseline",
         "power vs baseline"],
        rows,
        title=f"Design space: {workload} ({direction}), FP32 accumulation, 8-input tile",
    ))
    print("\nreading guide: (12,1) and (16,1) are the paper's Pareto picks —",
          "large area/power savings for modest FP-mode slowdowns.")

    custom_design_pareto()


def custom_design_pareto() -> None:
    """Part 2: joint accuracy x efficiency over paper + invented designs."""
    spec = DesignSweepSpec.grid(
        name="custom designs",
        designs=(
            "MC-SER", "MC-IPU4", "MC-IPU84", "MC-IPU8", "NVDLA", "FP16",
            # invented points: registry grammar, no code changes needed
            "mc-ipu:4x4@20b",        # MC-IPU4 with a roomier tree
            "mc-ipu:8x4@24b",        # near-single-cycle 8x4
            "mc-ipu:8x8@23b/ehu4",   # MC-IPU8 with tighter EHU clusters
        ),
        tiles=("small",),
        samples=96,
    )
    with DesignSession() as session:
        reports = session.sweep(spec)
        print()
        print(render_design_reports(reports, title=spec.name))
        front = pareto_frontier(reports, x="tops_per_mm2@4x4",
                                y="tops_per_mm2@fp16")
        print("\nINT4-density x FP16-density Pareto frontier (Table 1's "
              "trade-off):", ", ".join(r.design for r in front))
        exact = pareto_frontier(reports, x="tops_per_mm2@4x4",
                                y="-mean_contaminated_bits")
        print("INT4-density x numerics Pareto frontier:",
              ", ".join(r.design for r in exact))
        hits = sum(session.stats.hits.values())
        misses = sum(session.stats.misses.values())
        print(f"(session caches: {hits} hits / {misses} misses — designs "
              "sharing adder trees reuse each other's simulations)")


if __name__ == "__main__":
    main()
