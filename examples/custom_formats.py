"""Custom FP formats on the nibble IPU: BFloat16 and TF32 (Appendix B).

The paper notes the architecture extends to BFloat16/TF32 by widening the
EHU to 8-bit exponents and adjusting the nibble count (BF16 magnitudes fill
two nibbles -> only four nibble iterations per product). This example runs
the golden datapath on all supported formats and compares iteration counts
and accuracy against exact references.

Usage: python examples/custom_formats.py
"""

import numpy as np

from repro.fp import BF16, FP16, FP32, TF32, exact_inner_product_bits
from repro.ipu import InnerProductUnit, IPUConfig
from repro.nibble import fp_nibble_count, fp_schedule
from repro.utils.table import render_table


def bits_for(fmt, values):
    return [fmt.encode_value(float(v)) for v in values]


def main() -> None:
    rng = np.random.default_rng(3)
    a = rng.laplace(0, 1, 8)
    b = rng.laplace(0, 1, 8)

    rows = []
    for fmt in (FP16, BF16, TF32):
        nibbles = fp_nibble_count(fmt)
        iterations = len(fp_schedule(fmt))
        a_bits = bits_for(fmt, a)
        b_bits = bits_for(fmt, b)
        ipu = InnerProductUnit(IPUConfig(n_inputs=8, adder_width=38, software_precision=38))
        res = ipu.fp_dot(a_bits, b_bits, in_fmt=fmt, out_fmt=FP32)
        exact = FP32.decode_value(exact_inner_product_bits(fmt, a_bits, b_bits, FP32))
        rel = abs(res.value - exact) / max(abs(exact), 1e-30)
        rows.append([
            fmt.name, f"(1,{fmt.exp_bits},{fmt.man_bits})", nibbles,
            iterations, res.value, f"{rel:.2e}",
        ])
    print(render_table(
        ["format", "(s,e,m)", "nibbles/operand", "nibble iterations",
         "IPU(38) result", "rel err vs exact"],
        rows,
        title="Custom FP formats on the temporal nibble IPU (Appendix B)",
    ))
    print("\nBF16 products need only 4 nibble iterations (vs 9 for FP16/TF32):",
          "\nthe wider 8-bit exponent range costs EHU width, not multiplier passes.")


if __name__ == "__main__":
    main()
