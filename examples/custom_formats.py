"""Custom FP formats: registry names, eXmY specs, and the nibble IPU.

The paper notes the architecture extends to BFloat16/TF32 by widening the
EHU to 8-bit exponents and adjusting the nibble count (BF16 magnitudes fill
two nibbles -> only four nibble iterations per product). This example

- runs the golden datapath on all built-in formats and compares iteration
  counts and accuracy against exact references,
- resolves custom ``eXmY`` formats (FP8's e4m3/e5m2) through the
  `repro.fp.registry` and measures their fake-quantization error,
- sweeps IPU precisions over one *packed* operand batch through an
  `EmulationSession` — the FP16 tensors are decoded and nibble-split once,
  then every precision point reuses the same plan.

Usage: python examples/custom_formats.py
"""

import numpy as np

from repro.api import EmulationSession, PrecisionPoint, parse_format
from repro.fp import BF16, FP16, FP32, TF32, exact_inner_product_bits
from repro.ipu import InnerProductUnit, IPUConfig
from repro.nibble import fp_nibble_count, fp_schedule
from repro.nn.quantize import fake_quantize_fp
from repro.utils.table import render_table


def bits_for(fmt, values):
    return [fmt.encode_value(float(v)) for v in values]


def golden_formats_demo() -> None:
    rng = np.random.default_rng(3)
    a = rng.laplace(0, 1, 8)
    b = rng.laplace(0, 1, 8)

    rows = []
    for fmt in (FP16, BF16, TF32):
        nibbles = fp_nibble_count(fmt)
        iterations = len(fp_schedule(fmt))
        a_bits = bits_for(fmt, a)
        b_bits = bits_for(fmt, b)
        ipu = InnerProductUnit(IPUConfig(n_inputs=8, adder_width=38, software_precision=38))
        res = ipu.fp_dot(a_bits, b_bits, in_fmt=fmt, out_fmt=FP32)
        exact = FP32.decode_value(exact_inner_product_bits(fmt, a_bits, b_bits, FP32))
        rel = abs(res.value - exact) / max(abs(exact), 1e-30)
        rows.append([
            fmt.name, f"(1,{fmt.exp_bits},{fmt.man_bits})", nibbles,
            iterations, res.value, f"{rel:.2e}",
        ])
    print(render_table(
        ["format", "(s,e,m)", "nibbles/operand", "nibble iterations",
         "IPU(38) result", "rel err vs exact"],
        rows,
        title="Custom FP formats on the temporal nibble IPU (Appendix B)",
    ))
    print("\nBF16 products need only 4 nibble iterations (vs 9 for FP16/TF32):",
          "\nthe wider 8-bit exponent range costs EHU width, not multiplier passes.\n")


def registry_demo() -> None:
    """eXmY specs resolve through the registry; fake-quant measures them."""
    rng = np.random.default_rng(5)
    x = rng.laplace(0, 1, 4096)
    rows = []
    for name in ("fp16", "bfloat16", "tf32", "e5m2", "e4m3", "e3m4"):
        fmt = parse_format(name)
        q = fake_quantize_fp(x, fmt)
        rel = np.abs(q - x) / np.maximum(np.abs(x), 1e-30)
        rows.append([
            fmt.name, f"(1,{fmt.exp_bits},{fmt.man_bits})", fmt.total_bits,
            f"{np.median(rel):.2e}", f"{rel.max():.2e}",
        ])
    print(render_table(
        ["registry name", "(s,e,m)", "bits", "median rel err", "max rel err"],
        rows,
        title="Registry formats: fake-quantization error on Laplace samples",
    ))
    print("\nany eXmY string is a valid format name — the registry interns it",
          "\nso specs and sweeps can name formats in plain JSON.\n")


def packed_sweep_demo() -> None:
    """Pack once, emulate every precision point off the shared plan."""
    rng = np.random.default_rng(6)
    a = rng.laplace(0, 1, (4096, 16))
    b = rng.laplace(0, 1, (4096, 16))
    with EmulationSession() as session:
        # fake-quantize through the session: this decodes `a` into a cached
        # plan, and every kernel below hits that cache instead of re-packing
        a16 = fake_quantize_fp(a, "fp16", session=session)
        assert np.array_equal(a16, np.asarray(a, np.float16).astype(np.float64))
        exact = session.inner_product(a, b, PrecisionPoint(38, accumulator="kulisch"))
        points = [PrecisionPoint(w) for w in (10, 12, 16, 20, 28)]
        rows = []
        for p, res in zip(points, session.inner_products(a, b, points)):
            err = np.abs(res.values - exact.values)
            rows.append([f"IPU({p.adder_width})", f"{np.median(err):.3e}", f"{err.max():.3e}"])
        st = session.stats
        print(render_table(
            ["unit", "median abs err", "max abs err"], rows,
            title="Precision sweep off one packed operand plan",
        ))
        print(f"\nplan cache: {st.plan_misses} decodes for "
              f"{st.kernel_rows} kernel rows — no per-point re-decode.")


if __name__ == "__main__":
    golden_formats_demo()
    registry_demo()
    packed_sweep_demo()
