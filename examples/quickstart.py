"""Quickstart: emulate a mixed-precision IPU on INT and FP16 inner products.

Runs the bit-accurate golden model on a few inner products, showing
- exact INT4/INT8/INT12 dot products via nibble iterations,
- approximate FP16 inner products at several IPU precisions vs the exact
  (Kulisch) reference,
- the multi-cycle behaviour of a narrow MC-IPU,
- the batch-scale front door: an `repro.api.EmulationSession` running a
  declarative `RunSpec` sweep off one shared operand plan.

Usage: python examples/quickstart.py
"""

import numpy as np

from repro.api import EmulationSession, PrecisionPoint, RunSpec
from repro.fp import FP16, FP32
from repro.ipu import InnerProductUnit, IPUConfig, exact_fp_ip, make_mc_ipu
from repro.utils.table import render_table


def int_mode_demo() -> None:
    print("== INT mode: temporal nibble decomposition is exact ==")
    rng = np.random.default_rng(0)
    ipu = InnerProductUnit(IPUConfig(n_inputs=8, adder_width=28, software_precision=28))
    rows = []
    for a_bits, b_bits in [(4, 4), (8, 4), (8, 8), (8, 12)]:
        a = rng.integers(-(1 << (a_bits - 1)), 1 << (a_bits - 1), 8).tolist()
        b = rng.integers(-(1 << (b_bits - 1)), 1 << (b_bits - 1), 8).tolist()
        result, cycles = ipu.int_dot(a, b, a_bits, b_bits)
        assert result == sum(x * y for x, y in zip(a, b))
        rows.append([f"INT{a_bits} x INT{b_bits}", result, cycles])
    print(render_table(["operation", "dot product", "cycles"], rows))
    print()


def fp_mode_demo() -> None:
    print("== FP16 mode: IPU precision vs error (vs exact reference) ==")
    rng = np.random.default_rng(1)
    vals_a = rng.laplace(0, 1, 8).astype(np.float16)
    vals_b = rng.laplace(0, 1, 8).astype(np.float16)
    a_bits = [int(v) for v in vals_a.view(np.uint16)]
    b_bits = [int(v) for v in vals_b.view(np.uint16)]
    exact = FP32.decode_value(exact_fp_ip(a_bits, b_bits, FP16, FP32))
    rows = []
    for w in (10, 12, 16, 20, 28, 38):
        ipu = InnerProductUnit(IPUConfig(n_inputs=8, adder_width=w, software_precision=w))
        res = ipu.fp_dot(a_bits, b_bits, FP16, FP32)
        rows.append([f"IPU({w})", res.value, abs(res.value - exact), res.cycles])
    rows.append(["exact", exact, 0.0, "-"])
    print(render_table(["unit", "result", "abs error", "cycles"], rows))
    print()


def mc_ipu_demo() -> None:
    print("== MC-IPU: narrow adder, full accuracy, extra cycles ==")
    # operands with a wide exponent spread force multi-cycle alignment
    a = np.array([900.0, 0.004, 3.0, 250.0, 0.02, 1.0, 60.0, 0.25], dtype=np.float16)
    b = np.ones(8, dtype=np.float16)
    a_bits = [int(v) for v in a.view(np.uint16)]
    b_bits = [int(v) for v in b.view(np.uint16)]
    rows = []
    for w in (12, 16, 20, 28):
        ipu = make_mc_ipu(w, FP32, n_inputs=8)
        res = ipu.fp_dot(a_bits, b_bits, FP16, FP32)
        rows.append([f"MC-IPU({w})", res.value, res.alignment_cycles, res.cycles])
    print(render_table(
        ["unit", "result", "cycles / nibble iter", "total cycles (9 iters)"], rows))
    print("(the 38-bit baseline would take 9 cycles; narrower units trade",
          "FP cycles for INT-mode area)")
    print()


def session_demo() -> None:
    print("== EmulationSession: batch emulation through repro.api ==")
    rng = np.random.default_rng(4)
    a = rng.laplace(0, 1, (4096, 16))
    b = rng.laplace(0, 1, (4096, 16))
    with EmulationSession() as session:
        # one shared operand plan serves every precision and accumulator
        points = [PrecisionPoint(12), PrecisionPoint(16), PrecisionPoint(28),
                  PrecisionPoint(16, accumulator="fp16")]
        exact = session.inner_product(a, b, PrecisionPoint(38, accumulator="kulisch"))
        rows = []
        for p, res in zip(points, session.inner_products(a, b, points)):
            # compare the written-back value, so the accumulator's own
            # rounding (fp16 vs fp32) is visible next to the IPU error
            err = np.abs(res.rounded.astype(np.float64) - exact.values)
            rows.append([f"IPU({p.adder_width})", p.accumulator,
                         f"{err.mean():.3e}", f"{err.max():.3e}"])
        print(render_table(
            ["unit", "accumulator", "mean abs err", "max abs err"], rows,
            title="4096 emulated FP16 inner products vs the exact accumulator",
        ))
        st = session.stats
        print(f"plan cache: {st.plan_misses} decodes, {st.plan_hits} reuses "
              f"({st.kernel_rows} kernel rows total)")

        # the same sweep as a declarative, JSON-round-trippable spec
        spec = RunSpec.grid(name="quickstart", precisions=(12, 16, 28),
                            accumulators=("fp32",), sources=("laplace",),
                            batch=2000, seed=0)
        assert RunSpec.from_json(spec.to_json()) == spec
        sweep = session.sweep(spec)
        series = dict(sweep.series("laplace", "fp32", "median_contaminated_bits"))
        print("RunSpec JSON round-trip ok; median contaminated bits:",
              {w: round(v, 2) for w, v in series.items()})


if __name__ == "__main__":
    int_mode_demo()
    fp_mode_demo()
    mc_ipu_demo()
    session_demo()
